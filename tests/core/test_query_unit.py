"""Unit tests for the voxel query unit."""



class TestQuery:
    def test_occupied_voxel(self, loaded_accelerator):
        result = loaded_accelerator.query_unit.query(3.0, 0.1, 0.4)
        assert result.status == "occupied"
        assert result.probability is not None
        assert result.probability > 0.5

    def test_free_voxel(self, loaded_accelerator):
        result = loaded_accelerator.query_unit.query(1.0, 0.0, 0.4)
        assert result.status == "free"
        assert result.probability is not None
        assert result.probability < 0.5

    def test_unknown_voxel(self, loaded_accelerator):
        result = loaded_accelerator.query_unit.query(50.0, 50.0, 50.0)
        assert result.status == "unknown"
        assert result.probability is None

    def test_query_reports_serving_pe(self, loaded_accelerator):
        result = loaded_accelerator.query_unit.query(3.0, 0.1, 0.4)
        key = loaded_accelerator.address_generator.key_for_point(3.0, 0.1, 0.4)
        assert result.pe_id == loaded_accelerator.address_generator.pe_for_key(key)

    def test_query_cycles_are_positive_and_bounded(self, loaded_accelerator):
        result = loaded_accelerator.query_unit.query(3.0, 0.1, 0.4)
        # issue + at most one read per tree level + threshold compare
        assert 0 < result.cycles <= 2 + loaded_accelerator.config.tree_depth + 1

    def test_query_batch(self, loaded_accelerator):
        results = loaded_accelerator.query_unit.query_batch(
            [(3.0, 0.1, 0.4), (1.0, 0.0, 0.4), (50.0, 50.0, 50.0)]
        )
        assert [result.status for result in results] == ["occupied", "free", "unknown"]

    def test_statistics_accumulate(self, loaded_accelerator):
        unit = loaded_accelerator.query_unit
        served_before = unit.queries_served
        unit.query(1.0, 0.0, 0.4)
        unit.query(2.0, 0.0, 0.4)
        assert unit.queries_served == served_before + 2
        assert unit.average_cycles_per_query() > 0

    def test_average_cycles_of_idle_unit_is_zero(self, accelerator):
        assert accelerator.query_unit.average_cycles_per_query() == 0.0

    def test_query_agrees_with_exported_software_tree(self, loaded_accelerator):
        tree = loaded_accelerator.export_octree()
        for point in ((3.0, 0.1, 0.4), (1.0, 0.0, 0.4), (-2.0, 1.0, 0.4), (40.0, 40.0, 40.0)):
            assert loaded_accelerator.query_unit.query(*point).status == tree.classify(*point)
