"""Unit tests for the hardware ray-casting module and voxel queues."""

import pytest

from repro.core.address_gen import AddressGenerator
from repro.core.config import OMUConfig
from repro.core.raycast_unit import RayCastingUnit, VoxelQueue
from repro.octomap.keys import OcTreeKey
from repro.octomap.pointcloud import PointCloud
from repro.octomap.scan_insertion import compute_update_keys
from repro.octomap.octree import OccupancyOcTree


@pytest.fixture
def config() -> OMUConfig:
    return OMUConfig(resolution_m=0.2)


@pytest.fixture
def unit(config: OMUConfig) -> RayCastingUnit:
    generator = AddressGenerator(config.resolution_m, config.tree_depth, config.num_pes)
    return RayCastingUnit(config, generator)


class TestVoxelQueue:
    def test_push_pop_fifo_order(self):
        queue = VoxelQueue("free")
        keys = [OcTreeKey(i, 0, 0) for i in range(3)]
        for key in keys:
            queue.push(key)
        assert [queue.pop() for _ in range(3)] == keys

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            VoxelQueue("free").pop()

    def test_drain_empties_the_queue(self):
        queue = VoxelQueue("occupied")
        for i in range(5):
            queue.push(OcTreeKey(i, 0, 0))
        drained = queue.drain()
        assert len(drained) == 5
        assert len(queue) == 0
        assert queue.pops == 5

    def test_peak_occupancy_high_water_mark(self):
        queue = VoxelQueue("free")
        for i in range(4):
            queue.push(OcTreeKey(i, 0, 0))
        queue.pop()
        queue.push(OcTreeKey(9, 0, 0))
        assert queue.peak_occupancy == 4


class TestCastScan:
    def test_free_and_occupied_are_disjoint(self, unit, ring_cloud):
        result = unit.cast_scan(ring_cloud, (0.0, 0.0, 0.0))
        assert set(result.free_keys).isdisjoint(result.occupied_keys)
        assert result.total_updates() == len(result.free_keys) + len(result.occupied_keys)

    def test_cycles_proportional_to_traversed_voxels(self, unit, ring_cloud):
        result = unit.cast_scan(ring_cloud, (0.0, 0.0, 0.0))
        assert result.cycles >= len(result.free_keys)
        assert result.beams == len(ring_cloud)

    def test_queues_are_filled(self, unit, ring_cloud):
        result = unit.cast_scan(ring_cloud, (0.0, 0.0, 0.0))
        assert unit.free_queue.pushes == len(result.free_keys)
        assert unit.occupied_queue.pushes == len(result.occupied_keys)

    def test_matches_the_software_key_sets(self, unit, ring_cloud, config):
        """The accelerator front end and the software insertion agree exactly."""
        result = unit.cast_scan(ring_cloud, (0.0, 0.0, 0.0))
        tree = OccupancyOcTree(config.resolution_m)
        free_sw, occupied_sw = compute_update_keys(tree, ring_cloud, (0.0, 0.0, 0.0))
        assert set(result.free_keys) == free_sw
        assert set(result.occupied_keys) == occupied_sw

    def test_max_range_truncation_matches_software(self, unit, config):
        cloud = PointCloud([(10.0, 0.0, 0.0), (0.0, 12.0, 0.0)])
        result = unit.cast_scan(cloud, (0.0, 0.0, 0.0), max_range=3.0)
        tree = OccupancyOcTree(config.resolution_m)
        free_sw, occupied_sw = compute_update_keys(tree, cloud, (0.0, 0.0, 0.0), max_range=3.0)
        assert set(result.free_keys) == free_sw
        assert set(result.occupied_keys) == occupied_sw
        assert not result.occupied_keys

    def test_accumulates_totals_across_scans(self, unit, ring_cloud):
        unit.cast_scan(ring_cloud, (0.0, 0.0, 0.0))
        unit.cast_scan(ring_cloud, (0.5, 0.0, 0.0))
        assert unit.total_beams == 2 * len(ring_cloud)
        assert unit.total_cycles > 0

    def test_empty_cloud(self, unit):
        result = unit.cast_scan(PointCloud(), (0.0, 0.0, 0.0))
        assert result.total_updates() == 0
        assert result.cycles == 0
