"""Unit tests for the voxel scheduler (first-level-branch partitioning)."""

import pytest

from repro.core.address_gen import AddressGenerator
from repro.core.config import OMUConfig
from repro.core.scheduler import VoxelScheduler, VoxelUpdateRequest


@pytest.fixture
def config() -> OMUConfig:
    return OMUConfig(resolution_m=0.2)


@pytest.fixture
def scheduler(config: OMUConfig) -> VoxelScheduler:
    generator = AddressGenerator(config.resolution_m, config.tree_depth, config.num_pes)
    return VoxelScheduler(config, generator)


def octant_keys(scheduler):
    """One key per octant."""
    generator = scheduler.address_generator
    keys = []
    for x in (-1.0, 1.0):
        for y in (-1.0, 1.0):
            for z in (-1.0, 1.0):
                keys.append(generator.key_for_point(x, y, z))
    return keys


class TestScheduling:
    def test_every_pe_gets_a_queue(self, scheduler):
        batch = scheduler.schedule([], [])
        assert set(batch.per_pe) == set(range(8))
        assert batch.total_updates() == 0

    def test_keys_are_routed_by_octant(self, scheduler):
        keys = octant_keys(scheduler)
        batch = scheduler.schedule(keys, [])
        non_empty = [pe for pe, queue in batch.per_pe.items() if queue]
        assert len(non_empty) == 8
        assert all(len(queue) == 1 for queue in batch.per_pe.values())

    def test_free_then_occupied_order_within_a_pe(self, scheduler):
        generator = scheduler.address_generator
        free_key = generator.key_for_point(1.0, 1.0, 1.0)
        occupied_key = generator.key_for_point(2.0, 2.0, 2.0)
        batch = scheduler.schedule([free_key], [occupied_key])
        pe = generator.pe_for_key(free_key)
        queue = batch.per_pe[pe]
        assert queue[0] == VoxelUpdateRequest(free_key, occupied=False)
        assert queue[1] == VoxelUpdateRequest(occupied_key, occupied=True)

    def test_issue_cycles_are_one_per_voxel(self, scheduler):
        keys = octant_keys(scheduler)
        batch = scheduler.schedule(keys, keys[:3])
        assert batch.issue_cycles == (len(keys) + 3) * scheduler.config.timing.scheduler_issue_cycles

    def test_issued_counters_accumulate_across_batches(self, scheduler):
        keys = octant_keys(scheduler)
        scheduler.schedule(keys, [])
        scheduler.schedule([], keys)
        assert scheduler.issued_updates == 2 * len(keys)
        assert sum(scheduler.load_histogram()) == 2 * len(keys)

    def test_load_balance_metric(self, scheduler):
        keys = octant_keys(scheduler)
        balanced = scheduler.schedule(keys, [])
        assert balanced.load_balance() == pytest.approx(1.0 / 8.0)
        skewed = scheduler.schedule([keys[0]] * 10, [])
        assert skewed.load_balance() == pytest.approx(1.0)

    def test_load_balance_of_empty_batch(self, scheduler):
        assert scheduler.schedule([], []).load_balance() == 0.0

    def test_reduced_pe_count_routes_modulo(self):
        config = OMUConfig(resolution_m=0.2, num_pes=2)
        generator = AddressGenerator(config.resolution_m, config.tree_depth, config.num_pes)
        scheduler = VoxelScheduler(config, generator)
        keys = octant_keys(scheduler)
        batch = scheduler.schedule(keys, [])
        assert set(batch.per_pe) == {0, 1}
        assert batch.total_updates() == len(keys)
