"""Unit tests for the cycle breakdown and scan-timing containers."""

import pytest

from repro.core.timing import CycleBreakdown, PETimingStats, ScanTiming
from repro.octomap.counters import OperationKind


class TestCycleBreakdown:
    def test_fresh_breakdown_is_zero(self):
        breakdown = CycleBreakdown()
        assert breakdown.total() == 0
        assert all(value == 0.0 for value in breakdown.fractions().values())

    def test_charge_accumulates(self):
        breakdown = CycleBreakdown()
        breakdown.charge(OperationKind.UPDATE_LEAF, 5)
        breakdown.charge(OperationKind.UPDATE_LEAF, 3)
        assert breakdown.cycles[OperationKind.UPDATE_LEAF] == 8
        assert breakdown.total() == 8

    def test_charge_rejects_negative(self):
        with pytest.raises(ValueError):
            CycleBreakdown().charge(OperationKind.UPDATE_LEAF, -1)

    def test_fractions_sum_to_one(self):
        breakdown = CycleBreakdown()
        breakdown.charge(OperationKind.UPDATE_LEAF, 25)
        breakdown.charge(OperationKind.PRUNE_EXPAND, 75)
        fractions = breakdown.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions[OperationKind.PRUNE_EXPAND] == pytest.approx(0.75)

    def test_merge(self):
        a = CycleBreakdown()
        a.charge(OperationKind.UPDATE_LEAF, 10)
        b = CycleBreakdown()
        b.charge(OperationKind.UPDATE_LEAF, 5)
        b.charge(OperationKind.RAY_CASTING, 2)
        a.merge(b)
        assert a.cycles[OperationKind.UPDATE_LEAF] == 15
        assert a.cycles[OperationKind.RAY_CASTING] == 2

    def test_copy_is_independent(self):
        a = CycleBreakdown()
        a.charge(OperationKind.UPDATE_LEAF, 1)
        b = a.copy()
        b.charge(OperationKind.UPDATE_LEAF, 1)
        assert a.cycles[OperationKind.UPDATE_LEAF] == 1

    def test_maximum_over_breakdowns(self):
        breakdowns = []
        for cycles in (5, 9, 3):
            breakdown = CycleBreakdown()
            breakdown.charge(OperationKind.UPDATE_LEAF, cycles)
            breakdowns.append(breakdown)
        assert CycleBreakdown.maximum(breakdowns) == 9
        assert CycleBreakdown.maximum([]) == 0


class TestPETimingStats:
    def test_cycles_per_update(self):
        stats = PETimingStats(pe_id=0)
        stats.breakdown.charge(OperationKind.UPDATE_LEAF, 100)
        stats.voxel_updates = 4
        assert stats.busy_cycles() == 100
        assert stats.cycles_per_update() == pytest.approx(25.0)

    def test_cycles_per_update_without_updates(self):
        assert PETimingStats(pe_id=1).cycles_per_update() == 0.0


class TestScanTiming:
    def test_critical_path_overlaps_ray_casting(self):
        timing = ScanTiming(scheduler_cycles=10, raycast_cycles=50, pe_cycles_max=200, pe_cycles_total=800)
        assert timing.critical_path_cycles() == 210

    def test_critical_path_exposes_slow_ray_casting(self):
        timing = ScanTiming(scheduler_cycles=10, raycast_cycles=500, pe_cycles_max=200, pe_cycles_total=800)
        assert timing.critical_path_cycles() == 510

    def test_parallel_speedup(self):
        timing = ScanTiming(pe_cycles_max=100, pe_cycles_total=700)
        assert timing.parallel_speedup() == pytest.approx(7.0)

    def test_parallel_speedup_of_idle_timing(self):
        assert ScanTiming().parallel_speedup() == 1.0

    def test_cycles_per_update(self):
        timing = ScanTiming(scheduler_cycles=10, pe_cycles_max=90, pe_cycles_total=400, voxel_updates=10)
        assert timing.cycles_per_update() == pytest.approx(10.0)
        assert ScanTiming().cycles_per_update() == 0.0

    def test_merge_accumulates_everything(self):
        a = ScanTiming(scheduler_cycles=1, raycast_cycles=2, pe_cycles_max=3, pe_cycles_total=4, voxel_updates=5)
        a.breakdown.charge(OperationKind.UPDATE_LEAF, 7)
        b = ScanTiming(scheduler_cycles=10, raycast_cycles=20, pe_cycles_max=30, pe_cycles_total=40, voxel_updates=50)
        b.breakdown.charge(OperationKind.UPDATE_LEAF, 70)
        a.merge(b)
        assert a.scheduler_cycles == 11
        assert a.raycast_cycles == 22
        assert a.pe_cycles_max == 33
        assert a.pe_cycles_total == 44
        assert a.voxel_updates == 55
        assert a.breakdown.cycles[OperationKind.UPDATE_LEAF] == 77
