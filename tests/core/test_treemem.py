"""Unit tests for the packed TreeMem entry and the banked SRAM model."""

import pytest

from repro.core.treemem import (
    BankedTreeMemory,
    ChildStatus,
    NULL_POINTER,
    TreeMemBank,
    TreeMemEntry,
)


class TestTreeMemEntry:
    def test_default_entry_is_an_unknown_leaf(self):
        entry = TreeMemEntry()
        assert entry.is_leaf()
        assert entry.pointer == NULL_POINTER
        assert all(tag == ChildStatus.UNKNOWN for tag in entry.child_tags)
        assert entry.probability_raw == 0

    def test_tag_accessors(self):
        entry = TreeMemEntry()
        entry.set_tag(3, ChildStatus.OCCUPIED)
        assert entry.tag(3) == ChildStatus.OCCUPIED
        assert entry.known_children() == [3]

    def test_tag_index_bounds(self):
        entry = TreeMemEntry()
        with pytest.raises(IndexError):
            entry.tag(8)
        with pytest.raises(IndexError):
            entry.set_tag(-1, ChildStatus.FREE)

    def test_tags_length_validation(self):
        with pytest.raises(ValueError):
            TreeMemEntry(child_tags=[ChildStatus.UNKNOWN] * 4)

    def test_pointer_width_validation(self):
        with pytest.raises(ValueError):
            TreeMemEntry(pointer=1 << 33)

    def test_copy_is_deep_for_tags(self):
        entry = TreeMemEntry()
        clone = entry.copy()
        clone.set_tag(0, ChildStatus.INNER)
        assert entry.tag(0) == ChildStatus.UNKNOWN

    def test_pack_layout_matches_figure5(self):
        """Bits [63:32] pointer, [31:16] tags (2 bits/child), [15:0] probability."""
        entry = TreeMemEntry(pointer=0x1234, probability_raw=5)
        entry.set_tag(0, ChildStatus.OCCUPIED)   # bits 17:16 = 01
        entry.set_tag(2, ChildStatus.INNER)      # bits 21:20 = 11
        word = entry.pack()
        assert (word >> 32) & 0xFFFFFFFF == 0x1234
        assert (word >> 16) & 0xFFFF == 0b11_00_01  # child2=11, child1=00, child0=01
        assert word & 0xFFFF == 5

    def test_pack_unpack_roundtrip(self):
        entry = TreeMemEntry(pointer=77, probability_raw=-123)
        entry.set_tag(1, ChildStatus.FREE)
        entry.set_tag(7, ChildStatus.OCCUPIED)
        restored = TreeMemEntry.unpack(entry.pack())
        assert restored.pointer == 77
        assert restored.probability_raw == -123
        assert restored.tag(1) == ChildStatus.FREE
        assert restored.tag(7) == ChildStatus.OCCUPIED

    def test_unpack_rejects_oversized_words(self):
        with pytest.raises(ValueError):
            TreeMemEntry.unpack(1 << 64)

    def test_negative_probability_occupies_low_16_bits_only(self):
        entry = TreeMemEntry(probability_raw=-1)
        word = entry.pack()
        assert word & 0xFFFF == 0xFFFF
        assert TreeMemEntry.unpack(word).probability_raw == -1

    def test_word_fits_in_64_bits(self):
        entry = TreeMemEntry(pointer=0xFFFFFFFF, probability_raw=-32768)
        for index in range(8):
            entry.set_tag(index, ChildStatus.INNER)
        assert entry.pack() < (1 << 64)


class TestTreeMemBank:
    def test_read_of_unwritten_address_is_none(self):
        bank = TreeMemBank(0, 16)
        assert bank.read(3) is None

    def test_write_then_read(self):
        bank = TreeMemBank(0, 16)
        bank.write(5, TreeMemEntry(probability_raw=9))
        assert bank.read(5).probability_raw == 9

    def test_reads_and_writes_are_counted(self):
        bank = TreeMemBank(0, 16)
        bank.write(1, TreeMemEntry())
        bank.read(1)
        bank.read(2)
        assert bank.write_accesses == 1
        assert bank.read_accesses == 2

    def test_clear_invalidates(self):
        bank = TreeMemBank(0, 16)
        bank.write(1, TreeMemEntry())
        bank.clear(1)
        assert bank.read(1) is None

    def test_address_bounds(self):
        bank = TreeMemBank(0, 16)
        with pytest.raises(IndexError):
            bank.read(16)
        with pytest.raises(IndexError):
            bank.write(-1, TreeMemEntry())

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TreeMemBank(0, 0)

    def test_write_stores_a_copy(self):
        bank = TreeMemBank(0, 4)
        entry = TreeMemEntry(probability_raw=1)
        bank.write(0, entry)
        entry.probability_raw = 99
        assert bank.read(0).probability_raw == 1

    def test_occupied_entries(self):
        bank = TreeMemBank(0, 8)
        bank.write(0, TreeMemEntry())
        bank.write(3, TreeMemEntry())
        assert bank.occupied_entries() == 2


class TestBankedTreeMemory:
    def test_requires_eight_banks(self):
        with pytest.raises(ValueError):
            BankedTreeMemory(4, 16)

    def test_single_entry_access(self):
        memory = BankedTreeMemory(8, 16)
        memory.write_entry(2, 5, TreeMemEntry(probability_raw=7))
        assert memory.read_entry(2, 5).probability_raw == 7
        assert memory.read_entry(2, 4) is None

    def test_bank_index_bounds(self):
        memory = BankedTreeMemory(8, 16)
        with pytest.raises(IndexError):
            memory.read_entry(0, 8)

    def test_row_access_touches_all_banks(self):
        memory = BankedTreeMemory(8, 16)
        entries = [TreeMemEntry(probability_raw=index) for index in range(8)]
        memory.write_row(3, entries)
        row = memory.read_row(3)
        assert [entry.probability_raw for entry in row] == list(range(8))
        assert memory.row_reads == 1
        assert memory.row_writes == 1
        assert memory.total_reads() == 8
        assert memory.total_writes() == 8

    def test_row_write_length_validation(self):
        memory = BankedTreeMemory(8, 16)
        with pytest.raises(ValueError):
            memory.write_row(0, [TreeMemEntry()] * 4)

    def test_row_write_with_none_clears_that_bank(self):
        memory = BankedTreeMemory(8, 16)
        memory.write_entry(1, 0, TreeMemEntry())
        memory.write_row(1, [None] * 8)
        assert memory.read_entry(1, 0) is None

    def test_clear_row(self):
        memory = BankedTreeMemory(8, 16)
        memory.write_row(2, [TreeMemEntry()] * 8)
        memory.clear_row(2)
        assert all(entry is None for entry in memory.read_row(2))

    def test_utilization(self):
        memory = BankedTreeMemory(8, 4)
        assert memory.utilization() == 0.0
        memory.write_row(0, [TreeMemEntry()] * 8)
        assert memory.utilization() == pytest.approx(8 / 32)
        assert memory.occupied_entries() == 8
