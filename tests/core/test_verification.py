"""Functional equivalence tests: the accelerator vs the software golden model.

These are the most important tests of the reproduction -- they establish that
the OMU model computes *exactly* the same probabilistic map as the OctoMap
software library (with quantised parameters), which is the premise behind
comparing only their performance.
"""

import pytest

from repro.core import OMUAccelerator, OMUConfig
from repro.core.verification import (
    build_reference_tree,
    compare_trees,
    verify_against_software,
)
from repro.octomap.octree import OccupancyOcTree


class TestCompareTrees:
    def test_identical_trees_are_equivalent(self, small_tree):
        report = compare_trees(small_tree, small_tree, tolerance=1e-9)
        assert report.equivalent
        assert report.structure_mismatches == 0
        assert report.max_abs_error == 0.0
        assert "EQUIVALENT" in report.summary()

    def test_missing_leaf_is_a_structure_mismatch(self, small_tree):
        other = OccupancyOcTree(small_tree.resolution)
        report = compare_trees(small_tree, other, tolerance=1e-9)
        assert not report.equivalent
        assert report.structure_mismatches == report.leaves_reference
        assert report.mismatch_examples

    def test_value_difference_is_detected(self):
        reference = OccupancyOcTree(0.2)
        candidate = OccupancyOcTree(0.2)
        reference.update_node(1.0, 1.0, 1.0, occupied=True)
        candidate.update_node(1.0, 1.0, 1.0, occupied=True)
        candidate.update_node(1.0, 1.0, 1.0, occupied=True)
        report = compare_trees(reference, candidate, tolerance=1e-6)
        assert report.value_mismatches == 1
        assert not report.equivalent

    def test_classification_difference_is_detected(self):
        reference = OccupancyOcTree(0.2)
        candidate = OccupancyOcTree(0.2)
        reference.update_node(1.0, 1.0, 1.0, occupied=True)
        candidate.update_node(1.0, 1.0, 1.0, occupied=False)
        report = compare_trees(reference, candidate, tolerance=10.0)
        assert report.classification_mismatches == 1

    def test_mismatch_examples_are_bounded(self, small_tree):
        other = OccupancyOcTree(small_tree.resolution)
        report = compare_trees(small_tree, other, tolerance=1e-9, max_examples=3)
        assert len(report.mismatch_examples) == 3


class TestEndToEndEquivalence:
    def test_single_scan_equivalence(self, default_config, ring_graph):
        accelerator = OMUAccelerator(default_config)
        report = verify_against_software(accelerator, ring_graph)
        assert report.equivalent, report.summary()
        assert report.max_abs_error <= report.tolerance

    def test_multi_scan_equivalence_with_revisits(self, default_config, two_scan_graph):
        """Revisited voxels exercise pruning and expansion on both backends."""
        accelerator = OMUAccelerator(default_config)
        report = verify_against_software(accelerator, two_scan_graph)
        assert report.equivalent, report.summary()

    def test_equivalence_with_max_range(self, default_config, ring_graph):
        accelerator = OMUAccelerator(default_config)
        report = verify_against_software(accelerator, ring_graph, max_range=2.0)
        assert report.equivalent, report.summary()

    def test_equivalence_with_fewer_pes(self, ring_graph):
        accelerator = OMUAccelerator(OMUConfig(resolution_m=0.2, num_pes=2))
        report = verify_against_software(accelerator, ring_graph)
        assert report.equivalent, report.summary()

    def test_reference_tree_uses_quantised_parameters(self, default_config, ring_graph):
        accelerator = OMUAccelerator(default_config)
        accelerator.process_scan_graph(ring_graph)
        reference = build_reference_tree(accelerator, ring_graph)
        quantized = default_config.quantized_params()
        assert reference.params.log_odds_hit == pytest.approx(
            default_config.fixed_point.to_value(quantized.raw_hit), abs=1e-9
        )

    def test_exported_leaf_count_matches_reference(self, default_config, two_scan_graph):
        accelerator = OMUAccelerator(default_config)
        report = verify_against_software(accelerator, two_scan_graph)
        assert report.leaves_accelerator == report.leaves_reference
