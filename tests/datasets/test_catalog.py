"""Unit tests for the Table II dataset catalog."""

import pytest

from repro.datasets.catalog import (
    ALL_DATASETS,
    EQUIVALENT_FRAME_UPDATES,
    FR079_CORRIDOR,
    FREIBURG_CAMPUS,
    NEW_COLLEGE,
    dataset_by_name,
)


class TestCatalogContents:
    def test_three_datasets(self):
        assert len(ALL_DATASETS) == 3
        assert {d.name for d in ALL_DATASETS} == {
            "FR-079 corridor",
            "Freiburg campus",
            "New College",
        }

    def test_table2_statistics_fr079(self):
        d = FR079_CORRIDOR
        assert d.scan_number == 66
        assert d.average_points_per_scan == pytest.approx(89_000)
        assert d.point_cloud_total == 5_900_000
        assert d.voxel_updates_total == 101_000_000
        assert d.resolution_m == pytest.approx(0.2)

    def test_table2_statistics_campus_and_college(self):
        assert FREIBURG_CAMPUS.scan_number == 81
        assert FREIBURG_CAMPUS.voxel_updates_total == 1_031_000_000
        assert NEW_COLLEGE.scan_number == 92_361
        assert NEW_COLLEGE.average_points_per_scan == pytest.approx(156)

    def test_paper_reference_speedups(self):
        paper = FR079_CORRIDOR.paper
        assert paper.speedup_over_i9 == pytest.approx(12.8, abs=0.1)
        assert paper.speedup_over_a57 == pytest.approx(62.4, abs=0.2)
        assert paper.energy_benefit == pytest.approx(710.0, abs=5.0)

    def test_cpu_breakdown_fractions_sum_to_about_one(self):
        for descriptor in ALL_DATASETS:
            assert sum(descriptor.paper.cpu_breakdown) == pytest.approx(1.0, abs=0.02)

    def test_lookup_by_name_and_scene(self):
        assert dataset_by_name("FR-079 corridor") is FR079_CORRIDOR
        assert dataset_by_name("corridor") is FR079_CORRIDOR
        assert dataset_by_name("campus") is FREIBURG_CAMPUS

    def test_lookup_unknown_name(self):
        with pytest.raises(KeyError):
            dataset_by_name("does-not-exist")


class TestDerivedMetrics:
    def test_fps_definition_reproduces_paper_i9_numbers(self):
        """The FPS metric must map the paper's latencies back to its FPS."""
        for descriptor in ALL_DATASETS:
            fps = descriptor.fps_from_latency(descriptor.paper.i9_latency_s)
            assert fps == pytest.approx(descriptor.paper.i9_fps, rel=0.05)

    def test_fps_definition_reproduces_paper_a57_numbers(self):
        for descriptor in ALL_DATASETS:
            fps = descriptor.fps_from_latency(descriptor.paper.a57_latency_s)
            assert fps == pytest.approx(descriptor.paper.a57_fps, rel=0.08)

    def test_fps_definition_reproduces_paper_omu_numbers(self):
        for descriptor in ALL_DATASETS:
            fps = descriptor.fps_from_latency(descriptor.paper.omu_latency_s)
            assert fps == pytest.approx(descriptor.paper.omu_fps, rel=0.08)

    def test_fps_latency_roundtrip(self):
        d = FR079_CORRIDOR
        assert d.latency_from_fps(d.fps_from_latency(10.0)) == pytest.approx(10.0)

    def test_fps_requires_positive_latency(self):
        with pytest.raises(ValueError):
            FR079_CORRIDOR.fps_from_latency(0.0)
        with pytest.raises(ValueError):
            FR079_CORRIDOR.latency_from_fps(0.0)

    def test_equivalent_frames_definition(self):
        d = FR079_CORRIDOR
        assert d.equivalent_frames == pytest.approx(d.voxel_updates_total / EQUIVALENT_FRAME_UPDATES)

    def test_voxel_updates_per_point_in_plausible_range(self):
        for descriptor in ALL_DATASETS:
            assert 10.0 < descriptor.voxel_updates_per_point < 60.0

    def test_paper_energy_is_power_times_latency(self):
        """Table V is consistent with the A57's measured 2.6-2.9 W."""
        for descriptor in ALL_DATASETS:
            implied_power = descriptor.paper.a57_energy_j / descriptor.paper.a57_latency_s
            assert 2.5 < implied_power < 3.0
