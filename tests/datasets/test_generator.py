"""Unit tests for scan-graph generation and the scan-graph file format."""

import pytest

from repro.datasets.catalog import FR079_CORRIDOR, dataset_by_name
from repro.datasets.generator import (
    GenerationSpec,
    generate_named_graph,
    generate_scan_graph,
    trajectory_for_scene,
)


class TestTrajectories:
    @pytest.mark.parametrize("scene_name", ["corridor", "campus", "college"])
    def test_requested_number_of_poses(self, scene_name):
        poses = trajectory_for_scene(scene_name, 5)
        assert len(poses) == 5

    def test_sensor_travels_at_z_zero(self):
        for scene_name in ("corridor", "campus", "college"):
            for pose in trajectory_for_scene(scene_name, 4):
                assert pose.translation[2] == pytest.approx(0.0)

    def test_corridor_trajectory_spans_both_x_signs(self):
        xs = [pose.translation[0] for pose in trajectory_for_scene("corridor", 5)]
        assert min(xs) < 0.0 < max(xs)

    def test_campus_trajectory_is_a_loop(self):
        poses = trajectory_for_scene("campus", 8)
        radii = [
            (pose.translation[0] ** 2 + pose.translation[1] ** 2) ** 0.5 for pose in poses
        ]
        assert all(radius == pytest.approx(18.0, abs=0.01) for radius in radii)

    def test_unknown_scene_rejected(self):
        with pytest.raises(KeyError):
            trajectory_for_scene("space-station", 3)


class TestGenerationSpec:
    def test_defaults_are_valid(self):
        spec = GenerationSpec()
        assert spec.num_scans >= 1

    def test_zero_scans_rejected(self):
        with pytest.raises(ValueError):
            GenerationSpec(num_scans=0)


class TestGenerateScanGraph:
    def test_graph_has_requested_scans(self):
        spec = GenerationSpec(num_scans=3, beams_azimuth=60, beams_elevation=2, max_range_m=12.0)
        graph = generate_scan_graph(FR079_CORRIDOR, spec)
        assert len(graph) == 3
        assert graph.name == FR079_CORRIDOR.name

    def test_scans_contain_points(self):
        spec = GenerationSpec(num_scans=2, beams_azimuth=60, beams_elevation=2, max_range_m=12.0)
        graph = generate_scan_graph(FR079_CORRIDOR, spec)
        assert graph.total_points() > 0
        for scan in graph:
            assert len(scan) > 10

    def test_generation_is_deterministic(self):
        spec = GenerationSpec(num_scans=2, beams_azimuth=48, beams_elevation=2, max_range_m=12.0, dropout=0.3, seed=7)
        first = generate_scan_graph(FR079_CORRIDOR, spec)
        second = generate_scan_graph(FR079_CORRIDOR, spec)
        assert first.total_points() == second.total_points()

    def test_more_beams_give_more_points(self):
        small = GenerationSpec(num_scans=2, beams_azimuth=36, beams_elevation=2, max_range_m=12.0)
        large = GenerationSpec(num_scans=2, beams_azimuth=144, beams_elevation=2, max_range_m=12.0)
        assert (
            generate_scan_graph(FR079_CORRIDOR, large).total_points()
            > generate_scan_graph(FR079_CORRIDOR, small).total_points()
        )

    def test_generate_named_graph_convenience(self):
        descriptor, graph = generate_named_graph(
            "corridor", num_scans=2, beams_azimuth=48, beams_elevation=2, max_range_m=12.0
        )
        assert descriptor is dataset_by_name("corridor")
        assert len(graph) == 2

    @pytest.mark.parametrize("name", ["FR-079 corridor", "Freiburg campus", "New College"])
    def test_every_dataset_generates_world_points_in_all_octants(self, name):
        """The synthetic workloads must exercise every first-level branch."""
        descriptor, graph = generate_named_graph(
            name, num_scans=4, beams_azimuth=60, beams_elevation=3, max_range_m=15.0
        )
        octants = set()
        for scan in graph:
            for x, y, z in scan.world_cloud():
                octants.add((x > 0, y > 0, z > 0))
        assert len(octants) == 8
