"""Unit tests for the scan-graph text file format."""

import pytest

from repro.datasets.scan_graph_io import read_scan_graph, write_scan_graph
from repro.octomap.pointcloud import PointCloud, Pose6D, ScanGraph, ScanNode


@pytest.fixture
def sample_graph() -> ScanGraph:
    scans = [
        ScanNode(
            PointCloud([(1.0, 2.0, 3.0), (4.0, 5.0, 6.0)]),
            Pose6D((0.5, -0.5, 0.0), roll=0.1, pitch=-0.2, yaw=1.5),
            scan_id=0,
        ),
        ScanNode(PointCloud([(7.0, 8.0, 9.0)]), Pose6D((1.0, 1.0, 0.0)), scan_id=1),
    ]
    return ScanGraph(scans, name="sample graph")


class TestRoundTrip:
    def test_roundtrip_preserves_structure(self, sample_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_scan_graph(sample_graph, path)
        restored = read_scan_graph(path)
        assert restored.name == "sample graph"
        assert len(restored) == 2
        assert restored.total_points() == 3

    def test_roundtrip_preserves_points_exactly(self, sample_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_scan_graph(sample_graph, path)
        restored = read_scan_graph(path)
        assert list(restored[0].cloud) == list(sample_graph[0].cloud)

    def test_roundtrip_preserves_poses_exactly(self, sample_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_scan_graph(sample_graph, path)
        restored = read_scan_graph(path)
        assert restored[0].pose.translation == sample_graph[0].pose.translation
        assert restored[0].pose.yaw == sample_graph[0].pose.yaw
        assert restored[0].pose.roll == sample_graph[0].pose.roll

    def test_empty_graph_roundtrip(self, tmp_path):
        path = tmp_path / "empty.txt"
        write_scan_graph(ScanGraph(name="empty"), path)
        restored = read_scan_graph(path)
        assert len(restored) == 0
        assert restored.name == "empty"

    def test_scan_with_no_points_roundtrip(self, tmp_path):
        graph = ScanGraph([ScanNode(PointCloud(), Pose6D((1.0, 2.0, 3.0)))], name="x")
        path = tmp_path / "nopoints.txt"
        write_scan_graph(graph, path)
        restored = read_scan_graph(path)
        assert len(restored) == 1
        assert len(restored[0]) == 0


class TestErrorHandling:
    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("NODE 0 0 0 0 0 0\n")
        with pytest.raises(ValueError, match="header"):
            read_scan_graph(path)

    def test_points_before_first_node_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# repro-scangraph v1\n1.0 2.0 3.0\n")
        with pytest.raises(ValueError, match="before the first NODE"):
            read_scan_graph(path)

    def test_malformed_node_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# repro-scangraph v1\nNODE 0 0 0\n")
        with pytest.raises(ValueError, match="6 fields"):
            read_scan_graph(path)

    def test_malformed_point_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# repro-scangraph v1\nNODE 0 0 0 0 0 0\n1.0 2.0\n")
        with pytest.raises(ValueError, match="3 fields"):
            read_scan_graph(path)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "ok.txt"
        path.write_text(
            "# repro-scangraph v1\n# a comment\n\nNODE 0 0 0 0 0 0\n# another\n1.0 2.0 3.0\n"
        )
        graph = read_scan_graph(path)
        assert graph.total_points() == 1
