"""Unit tests for the synthetic scene primitives and scene builders."""

import math

import pytest

from repro.datasets.scenes import (
    AxisAlignedBox,
    GroundPlane,
    Scene,
    VerticalCylinder,
    campus_scene,
    college_scene,
    corridor_scene,
    scene_by_name,
)


class TestAxisAlignedBox:
    def test_degenerate_box_rejected(self):
        with pytest.raises(ValueError):
            AxisAlignedBox((0, 0, 0), (0, 1, 1))

    def test_ray_hits_front_face(self):
        box = AxisAlignedBox((2.0, -1.0, -1.0), (3.0, 1.0, 1.0))
        t = box.intersect((0.0, 0.0, 0.0), (1.0, 0.0, 0.0))
        assert t == pytest.approx(2.0)

    def test_ray_pointing_away_misses(self):
        box = AxisAlignedBox((2.0, -1.0, -1.0), (3.0, 1.0, 1.0))
        assert box.intersect((0.0, 0.0, 0.0), (-1.0, 0.0, 0.0)) is None

    def test_ray_parallel_outside_slab_misses(self):
        box = AxisAlignedBox((2.0, -1.0, -1.0), (3.0, 1.0, 1.0))
        assert box.intersect((0.0, 5.0, 0.0), (1.0, 0.0, 0.0)) is None

    def test_ray_from_inside_hits_exit_face(self):
        box = AxisAlignedBox((-1.0, -1.0, -1.0), (1.0, 1.0, 1.0))
        t = box.intersect((0.0, 0.0, 0.0), (1.0, 0.0, 0.0))
        assert t == pytest.approx(1.0)

    def test_contains(self):
        box = AxisAlignedBox((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        assert box.contains((0.5, 0.5, 0.5))
        assert not box.contains((2.0, 0.5, 0.5))


class TestGroundPlane:
    def test_downward_ray_hits(self):
        plane = GroundPlane(-1.0)
        t = plane.intersect((0.0, 0.0, 0.0), (0.0, 0.0, -1.0))
        assert t == pytest.approx(1.0)

    def test_upward_ray_misses(self):
        assert GroundPlane(-1.0).intersect((0.0, 0.0, 0.0), (0.0, 0.0, 1.0)) is None

    def test_horizontal_ray_misses(self):
        assert GroundPlane(-1.0).intersect((0.0, 0.0, 0.0), (1.0, 0.0, 0.0)) is None


class TestVerticalCylinder:
    def test_validation(self):
        with pytest.raises(ValueError):
            VerticalCylinder(0, 0, -1.0, 0, 1)
        with pytest.raises(ValueError):
            VerticalCylinder(0, 0, 1.0, 2, 1)

    def test_ray_hits_surface(self):
        cylinder = VerticalCylinder(5.0, 0.0, 1.0, -2.0, 2.0)
        t = cylinder.intersect((0.0, 0.0, 0.0), (1.0, 0.0, 0.0))
        assert t == pytest.approx(4.0)

    def test_ray_above_the_cap_misses(self):
        cylinder = VerticalCylinder(5.0, 0.0, 1.0, -2.0, 2.0)
        assert cylinder.intersect((0.0, 0.0, 5.0), (1.0, 0.0, 0.0)) is None

    def test_vertical_ray_misses(self):
        cylinder = VerticalCylinder(5.0, 0.0, 1.0, -2.0, 2.0)
        assert cylinder.intersect((0.0, 0.0, 0.0), (0.0, 0.0, 1.0)) is None

    def test_offset_ray_misses(self):
        cylinder = VerticalCylinder(5.0, 0.0, 0.5, -2.0, 2.0)
        assert cylinder.intersect((0.0, 3.0, 0.0), (1.0, 0.0, 0.0)) is None


class TestScene:
    def test_nearest_hit_wins(self):
        scene = Scene(
            "test",
            [
                AxisAlignedBox((5.0, -1.0, -1.0), (6.0, 1.0, 1.0)),
                AxisAlignedBox((2.0, -1.0, -1.0), (3.0, 1.0, 1.0)),
            ],
            extent_m=10.0,
        )
        hit = scene.cast((0.0, 0.0, 0.0), (1.0, 0.0, 0.0), max_range=20.0)
        assert hit[0] == pytest.approx(2.0)

    def test_out_of_range_hit_is_discarded(self):
        scene = Scene("test", [AxisAlignedBox((5.0, -1.0, -1.0), (6.0, 1.0, 1.0))], 10.0)
        assert scene.cast((0.0, 0.0, 0.0), (1.0, 0.0, 0.0), max_range=3.0) is None

    def test_add_primitive(self):
        scene = Scene("test", [], 10.0)
        assert scene.cast((0, 0, 0), (1, 0, 0), 10.0) is None
        scene.add(AxisAlignedBox((1.0, -1.0, -1.0), (2.0, 1.0, 1.0)))
        assert scene.cast((0, 0, 0), (1, 0, 0), 10.0) is not None


class TestSceneBuilders:
    @pytest.mark.parametrize("name", ["corridor", "campus", "college"])
    def test_scene_by_name(self, name):
        scene = scene_by_name(name)
        assert scene.name == name
        assert scene.primitives

    def test_scene_by_name_unknown(self):
        with pytest.raises(KeyError):
            scene_by_name("moon-base")

    def test_corridor_encloses_the_walkway(self):
        scene = corridor_scene()
        # Looking sideways from the middle of the corridor must hit a wall.
        assert scene.cast((0.0, 0.0, 0.0), (0.0, 1.0, 0.0), 30.0) is not None
        assert scene.cast((5.0, 0.0, 0.0), (0.0, -1.0, 0.0), 30.0) is not None
        # Looking down hits the floor below the sensor (floor_z < 0).
        floor_hit = scene.cast((0.0, 0.0, 0.0), (0.0, 0.0, -1.0), 30.0)
        assert floor_hit is not None and floor_hit[2] < 0.0

    def test_corridor_has_content_above_and_below_the_sensor_plane(self):
        """Both z octants must receive returns (PE load-balance precondition)."""
        scene = corridor_scene()
        up = scene.cast((0.0, 0.0, 0.0), (0.0, 0.2, 1.0), 30.0)
        down = scene.cast((0.0, 0.0, 0.0), (0.0, 0.2, -1.0), 30.0)
        assert up is not None and up[2] > 0.0
        assert down is not None and down[2] < 0.0

    def test_campus_ground_is_below_sensor(self):
        scene = campus_scene()
        hit = scene.cast((0.0, 0.0, 0.0), (0.3, 0.1, -1.0), 60.0)
        assert hit is not None
        assert hit[2] == pytest.approx(-1.6, abs=1e-6)

    def test_campus_buildings_are_hit_horizontally(self):
        scene = campus_scene()
        hits = 0
        for azimuth_deg in range(0, 360, 10):
            azimuth = math.radians(azimuth_deg)
            if scene.cast((0.0, 0.0, 0.0), (math.cos(azimuth), math.sin(azimuth), 0.0), 60.0):
                hits += 1
        assert hits > 5

    def test_college_is_enclosed_by_walls(self):
        scene = college_scene()
        for azimuth_deg in range(0, 360, 30):
            azimuth = math.radians(azimuth_deg)
            hit = scene.cast((0.0, 5.0, 0.0), (math.cos(azimuth), math.sin(azimuth), 0.0), 100.0)
            assert hit is not None, f"azimuth {azimuth_deg} escaped the quad"
