"""Unit tests for the simulated LiDAR and depth camera."""

import numpy as np
import pytest

from repro.datasets.scenes import AxisAlignedBox, Scene, corridor_scene
from repro.datasets.sensors import DepthCamera, SpinningLidar
from repro.octomap.pointcloud import Pose6D


@pytest.fixture
def box_scene() -> Scene:
    """A single box 3 m in front of the origin."""
    return Scene("box", [AxisAlignedBox((3.0, -4.0, -2.0), (3.5, 4.0, 2.0))], extent_m=10.0)


class TestSpinningLidar:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpinningLidar(num_azimuth=0)
        with pytest.raises(ValueError):
            SpinningLidar(dropout=1.0)
        with pytest.raises(ValueError):
            SpinningLidar(max_range_m=0.0)

    def test_direction_count_and_normalisation(self):
        lidar = SpinningLidar(num_azimuth=36, num_elevation=4)
        directions = lidar.directions()
        assert directions.shape == (36 * 4, 3)
        norms = np.linalg.norm(directions, axis=1)
        assert np.allclose(norms, 1.0)
        assert lidar.beams_per_scan == 144

    def test_single_elevation_is_horizontal(self):
        lidar = SpinningLidar(num_azimuth=8, num_elevation=1)
        assert np.allclose(lidar.directions()[:, 2], 0.0)

    def test_scan_returns_sensor_frame_points(self, box_scene):
        lidar = SpinningLidar(num_azimuth=72, num_elevation=1, max_range_m=20.0)
        cloud = lidar.scan(box_scene, Pose6D((0.0, 0.0, 0.0)))
        assert len(cloud) > 0
        # Every return must come from the box front face at x = 3.
        for x, y, z in cloud:
            assert x == pytest.approx(3.0, abs=0.2)

    def test_scan_respects_pose_rotation(self, box_scene):
        lidar = SpinningLidar(num_azimuth=72, num_elevation=1, max_range_m=20.0)
        pose = Pose6D((0.0, 0.0, 0.0), yaw=np.pi / 2.0)
        cloud = lidar.scan(box_scene, pose)
        world = cloud.transformed(pose)
        for x, y, z in world:
            assert x == pytest.approx(3.0, abs=0.2)

    def test_misses_beyond_max_range_produce_no_return(self, box_scene):
        lidar = SpinningLidar(num_azimuth=72, num_elevation=1, max_range_m=1.0)
        cloud = lidar.scan(box_scene, Pose6D((0.0, 0.0, 0.0)))
        assert len(cloud) == 0

    def test_dropout_reduces_returns_deterministically(self):
        scene = corridor_scene()
        dense = SpinningLidar(num_azimuth=90, num_elevation=2, dropout=0.0, seed=1)
        sparse_a = SpinningLidar(num_azimuth=90, num_elevation=2, dropout=0.5, seed=1)
        sparse_b = SpinningLidar(num_azimuth=90, num_elevation=2, dropout=0.5, seed=1)
        pose = Pose6D((0.0, 0.0, 0.0))
        n_dense = len(dense.scan(scene, pose))
        n_sparse_a = len(sparse_a.scan(scene, pose))
        n_sparse_b = len(sparse_b.scan(scene, pose))
        assert n_sparse_a < n_dense
        assert n_sparse_a == n_sparse_b

    def test_corridor_scan_covers_both_z_octants(self):
        scene = corridor_scene()
        lidar = SpinningLidar(num_azimuth=90, num_elevation=5, max_range_m=20.0)
        cloud = lidar.scan(scene, Pose6D((0.0, 0.0, 0.0)))
        zs = [z for _, _, z in cloud]
        assert min(zs) < 0.0 < max(zs)


class TestDepthCamera:
    def test_validation(self):
        with pytest.raises(ValueError):
            DepthCamera(width=0)
        with pytest.raises(ValueError):
            DepthCamera(stride=0)

    def test_pixels_per_frame_matches_paper_reference_frame(self):
        assert DepthCamera().pixels_per_frame == 320 * 240

    def test_frame_contains_wall_returns(self, box_scene):
        camera = DepthCamera(width=64, height=48, stride=8, max_range_m=10.0)
        cloud = camera.scan(box_scene, Pose6D((0.0, 0.0, 0.0)))
        assert len(cloud) > 0
        for x, y, z in cloud:
            assert x == pytest.approx(3.0, abs=0.3)

    def test_out_of_range_scene_gives_empty_frame(self, box_scene):
        camera = DepthCamera(width=32, height=24, stride=8, max_range_m=1.0)
        assert len(camera.scan(box_scene, Pose6D((0.0, 0.0, 0.0)))) == 0
