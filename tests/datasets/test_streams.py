"""Multi-client scan streams: reproducibility, interleaving, seed plumbing."""

from __future__ import annotations

import pytest

from repro.datasets import dataset_by_name
from repro.datasets.generator import GenerationSpec, generate_scan_graph
from repro.datasets.streams import ClientSpec, generate_client_scans, generate_interleaved_stream


CLIENTS = (
    ClientSpec(client_id="a", session_id="s1", scene="corridor", num_scans=2, dropout=0.3),
    ClientSpec(client_id="b", session_id="s2", scene="campus", num_scans=3, dropout=0.2),
    ClientSpec(client_id="c", session_id="s1", scene="college", num_scans=2),
)


def _signature(events):
    return [
        (e.arrival_index, e.client_id, e.session_id, e.scan.scan_id, len(e.scan))
        for e in events
    ]


def test_same_seed_reproduces_the_stream_exactly():
    first = generate_interleaved_stream(CLIENTS, seed=7)
    second = generate_interleaved_stream(CLIENTS, seed=7)
    assert _signature(first) == _signature(second)
    for left, right in zip(first, second):
        assert (left.scan.cloud.points == right.scan.cloud.points).all()


def test_different_seeds_change_the_interleaving():
    first = generate_interleaved_stream(CLIENTS, seed=1)
    second = generate_interleaved_stream(CLIENTS, seed=2)
    assert [e.client_id for e in first] != [e.client_id for e in second]


def test_every_client_scan_appears_once_in_order():
    events = generate_interleaved_stream(CLIENTS, seed=3)
    assert len(events) == sum(spec.num_scans for spec in CLIENTS)
    for spec in CLIENTS:
        scan_ids = [e.scan.scan_id for e in events if e.client_id == spec.client_id]
        assert scan_ids == list(range(spec.num_scans))  # per-client order kept


def test_round_robin_mode_is_deterministic():
    events = generate_interleaved_stream(CLIENTS, seed=9, shuffle=False)
    assert [e.client_id for e in events[:3]] == ["a", "b", "c"]
    assert _signature(events) == _signature(generate_interleaved_stream(CLIENTS, seed=9, shuffle=False))


def test_adding_a_client_does_not_perturb_existing_clients():
    base = generate_interleaved_stream(CLIENTS[:2], seed=5)
    extended = generate_interleaved_stream(CLIENTS, seed=5)
    for client_id in ("a", "b"):
        base_clouds = [e.scan.cloud.points for e in base if e.client_id == client_id]
        ext_clouds = [e.scan.cloud.points for e in extended if e.client_id == client_id]
        assert len(base_clouds) == len(ext_clouds)
        for left, right in zip(base_clouds, ext_clouds):
            assert (left == right).all()


def test_duplicate_client_ids_rejected():
    with pytest.raises(ValueError, match="duplicate client ids"):
        generate_interleaved_stream((CLIENTS[0], CLIENTS[0]), seed=0)


def test_empty_client_list_yields_empty_stream():
    assert generate_interleaved_stream((), seed=0) == []


def test_client_spec_validation():
    with pytest.raises(ValueError, match="num_scans"):
        ClientSpec(client_id="x", session_id="s", num_scans=0)
    with pytest.raises(ValueError, match="unknown sensor"):
        ClientSpec(client_id="x", session_id="s", sensor="sonar")


def test_depth_camera_clients_produce_scans():
    spec = ClientSpec(client_id="cam", session_id="s", sensor="depth_camera", num_scans=2, max_range_m=8.0)
    scans = generate_client_scans(spec, seed=0)
    assert len(scans) == 2
    assert all(len(scan) > 0 for scan in scans)


# ---------------------------------------------------------------------------
# Deterministic-seed regression: per-client generators (point-for-point)
# ---------------------------------------------------------------------------
def test_client_scan_generator_reproduces_point_for_point():
    """Same seed => identical scan stream for one client, down to the beam
    dropout pattern and every point coordinate (the multi-client stream rests
    on this per-client determinism, previously untested on its own)."""
    spec = ClientSpec(
        client_id="x", session_id="s", scene="corridor", num_scans=3, dropout=0.35
    )
    first = generate_client_scans(spec, seed=11)
    second = generate_client_scans(spec, seed=11)
    assert len(first) == len(second) == 3
    for left, right in zip(first, second):
        assert left.scan_id == right.scan_id
        assert len(left) == len(right)  # identical dropout decisions
        assert (left.cloud.points == right.cloud.points).all()
        assert left.pose.translation == right.pose.translation


def test_client_scan_generator_seed_changes_the_dropout_pattern():
    spec = ClientSpec(
        client_id="x", session_id="s", scene="corridor", num_scans=2, dropout=0.35
    )
    first = generate_client_scans(spec, seed=11)
    second = generate_client_scans(spec, seed=12)
    # With 35% dropout over hundreds of beams, two seeds keeping the same
    # beams on every scan would mean the seed is not reaching the sensor.
    assert any(
        len(left) != len(right) or not (left.cloud.points == right.cloud.points).all()
        for left, right in zip(first, second)
    )


def test_mixed_sensor_stream_reproduces_identically():
    """The full multi-client path (lidar + depth camera, dropout, shuffle)
    is deterministic in the master seed, event for event and point for point."""
    clients = (
        ClientSpec(client_id="l", session_id="s1", scene="corridor", num_scans=3, dropout=0.25),
        ClientSpec(client_id="d", session_id="s2", scene="campus", sensor="depth_camera", num_scans=2),
    )
    first = generate_interleaved_stream(clients, seed=99)
    second = generate_interleaved_stream(clients, seed=99)
    assert _signature(first) == _signature(second)
    for left, right in zip(first, second):
        assert (left.scan.cloud.points == right.scan.cloud.points).all()
        assert left.scan.pose.translation == right.scan.pose.translation
        assert (left.scan.pose.roll, left.scan.pose.pitch, left.scan.pose.yaw) == (
            right.scan.pose.roll,
            right.scan.pose.pitch,
            right.scan.pose.yaw,
        )


def test_beam_resolution_is_independent_of_interleaving_seeded_identically():
    """Changing only the azimuth/elevation beam counts must not perturb the
    interleaving order (the arrival schedule derives from the master seed and
    the per-client scan counts alone)."""
    coarse = generate_interleaved_stream(CLIENTS, seed=4, beams_azimuth=48, beams_elevation=2)
    fine = generate_interleaved_stream(CLIENTS, seed=4, beams_azimuth=96, beams_elevation=3)
    assert [e.client_id for e in coarse] == [e.client_id for e in fine]
    assert [e.scan.scan_id for e in coarse] == [e.scan.scan_id for e in fine]


# ---------------------------------------------------------------------------
# Seed plumbing in the graph generator (satellite fix)
# ---------------------------------------------------------------------------
def test_reseeded_spec_changes_and_reproduces_the_graph():
    descriptor = dataset_by_name("FR-079 corridor")
    spec = GenerationSpec(num_scans=2, beams_azimuth=48, beams_elevation=2, dropout=0.4, seed=0)
    baseline = generate_scan_graph(descriptor, spec)
    reseeded = generate_scan_graph(descriptor, spec.with_seed(123))
    regenerated = generate_scan_graph(descriptor, spec.with_seed(123))
    assert baseline.total_points() != reseeded.total_points() or not _clouds_equal(
        baseline, reseeded
    )
    assert _clouds_equal(reseeded, regenerated)


def _clouds_equal(left, right):
    if len(left) != len(right):
        return False
    for scan_left, scan_right in zip(left, right):
        if len(scan_left) != len(scan_right):
            return False
        if not (scan_left.cloud.points == scan_right.cloud.points).all():
            return False
    return True


def test_with_seed_returns_new_spec():
    spec = GenerationSpec(seed=0)
    reseeded = spec.with_seed(42)
    assert reseeded.seed == 42
    assert spec.seed == 0
    assert reseeded.num_scans == spec.num_scans


# ---------------------------------------------------------------------------
# Open-loop arrival processes
# ---------------------------------------------------------------------------
def test_poisson_arrivals_are_sorted_reproducible_and_rate_accurate():
    import numpy as np

    from repro.datasets.streams import poisson_arrival_times

    times = poisson_arrival_times(5000, rate_per_s=100.0, seed=3)
    assert len(times) == 5000
    assert np.all(np.diff(times) >= 0.0)
    assert np.array_equal(times, poisson_arrival_times(5000, 100.0, seed=3))
    # Mean inter-arrival of a 100/s Poisson process is 10 ms (law of large
    # numbers keeps 5000 draws within a loose band).
    assert np.mean(np.diff(times)) == pytest.approx(0.01, rel=0.2)
    assert not np.array_equal(times, poisson_arrival_times(5000, 100.0, seed=4))


def test_bursty_arrivals_preserve_mean_rate_and_cluster():
    import numpy as np

    from repro.datasets.streams import bursty_arrival_times, poisson_arrival_times

    times = bursty_arrival_times(4000, rate_per_s=100.0, seed=5, burst_size=8)
    assert len(times) == 4000
    assert np.all(np.diff(times) >= 0.0)
    # Same long-run rate as the Poisson process ...
    assert times[-1] == pytest.approx(4000 / 100.0, rel=0.3)
    # ... but far burstier: most gaps are the 1 ms within-burst spacing.
    gaps = np.diff(times)
    smooth_gaps = np.diff(poisson_arrival_times(4000, 100.0, seed=5))
    assert np.median(gaps) < np.median(smooth_gaps) / 2.0


def test_arrival_process_validation():
    from repro.datasets.streams import bursty_arrival_times, poisson_arrival_times

    with pytest.raises(ValueError):
        poisson_arrival_times(-1, 10.0)
    with pytest.raises(ValueError):
        poisson_arrival_times(5, 0.0)
    with pytest.raises(ValueError):
        bursty_arrival_times(5, 10.0, burst_size=0)
    assert len(poisson_arrival_times(0, 10.0)) == 0


def test_assign_arrival_times_stamps_without_reordering():
    from repro.datasets.streams import assign_arrival_times, poisson_arrival_times

    clients = [
        ClientSpec(client_id="a", session_id="s", num_scans=2),
        ClientSpec(client_id="b", session_id="s", num_scans=2),
    ]
    events = generate_interleaved_stream(clients, seed=0)
    times = poisson_arrival_times(len(events), 50.0, seed=0)
    stamped = assign_arrival_times(events, times)
    assert [e.arrival_index for e in stamped] == [e.arrival_index for e in events]
    assert [e.arrival_s for e in stamped] == [pytest.approx(t) for t in times]
    # Originals are untouched (closed-loop replay default stays 0.0).
    assert all(e.arrival_s == 0.0 for e in events)


def test_assign_arrival_times_rejects_bad_schedules():
    from repro.datasets.streams import assign_arrival_times

    clients = [ClientSpec(client_id="a", session_id="s", num_scans=2)]
    events = generate_interleaved_stream(clients, seed=0)
    with pytest.raises(ValueError):
        assign_arrival_times(events, [0.1])  # length mismatch
    with pytest.raises(ValueError):
        assign_arrival_times(events, [0.2, 0.1])  # unsorted
