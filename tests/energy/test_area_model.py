"""Unit tests for the 12 nm area model (Fig. 8)."""

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.energy.area_model import AreaModel, AreaParameters


class TestAreaCalibration:
    def test_total_area_matches_paper(self):
        """Fig. 8: the 8-PE accelerator occupies ~2.5 mm^2 in 12 nm."""
        report = AreaModel(DEFAULT_CONFIG).report()
        assert report.total_mm2 == pytest.approx(2.5, rel=0.05)

    def test_sram_dominates_the_area(self):
        report = AreaModel(DEFAULT_CONFIG).report()
        assert report.sram_fraction > 0.6

    def test_report_components_are_consistent(self):
        report = AreaModel(DEFAULT_CONFIG).report()
        assert report.total_mm2 == pytest.approx(
            report.sram_mm2 + report.pe_logic_mm2 + report.frontend_mm2
        )
        assert report.as_dict()["total_mm2"] == pytest.approx(report.total_mm2)

    def test_layout_outline_matches_figure8(self):
        width, height = AreaModel(DEFAULT_CONFIG).layout_mm()
        assert (width, height) == (2.0, 1.25)

    def test_design_fits_the_layout_outline(self):
        assert AreaModel(DEFAULT_CONFIG).fits_layout()

    def test_fits_layout_utilization_validation(self):
        with pytest.raises(ValueError):
            AreaModel(DEFAULT_CONFIG).fits_layout(utilization=0.0)


class TestAreaScaling:
    def test_fewer_pes_shrink_the_design(self):
        small = AreaModel(DEFAULT_CONFIG.with_pe_count(4)).report()
        full = AreaModel(DEFAULT_CONFIG).report()
        assert small.total_mm2 < full.total_mm2
        # SRAM scales with the PE count too (each PE brings its 256 kB).
        assert small.sram_mm2 == pytest.approx(full.sram_mm2 / 2.0)

    def test_larger_banks_grow_the_sram_area(self):
        bigger = AreaModel(DEFAULT_CONFIG.with_bank_kilobytes(64)).report()
        assert bigger.sram_mm2 == pytest.approx(2.0 * AreaModel(DEFAULT_CONFIG).report().sram_mm2)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AreaParameters(sram_mm2_per_mb=0.0)
