"""Unit tests for the 12 nm power / energy model."""

import pytest

from repro.core.accelerator import AcceleratorStatistics
from repro.core.config import DEFAULT_CONFIG
from repro.energy.power_model import PowerModel, TechnologyParameters


@pytest.fixture
def model() -> PowerModel:
    return PowerModel(DEFAULT_CONFIG)


class TestPowerCalibration:
    def test_nominal_power_matches_paper_total(self, model):
        """Section VI-C: 250.8 mW at 1 GHz under the mapping workload."""
        report = model.nominal_power()
        assert report.total_w == pytest.approx(0.2508, rel=0.05)

    def test_nominal_sram_share_matches_paper(self, model):
        """Section VI-C: 91 % of the power is SRAM."""
        report = model.nominal_power()
        assert report.sram_fraction == pytest.approx(0.91, abs=0.03)

    def test_power_report_components_are_consistent(self, model):
        report = model.nominal_power()
        assert report.total_w == pytest.approx(report.sram_w + report.logic_w)
        assert report.sram_w == pytest.approx(report.sram_dynamic_w + report.sram_leakage_w)
        as_dict = report.as_dict()
        assert as_dict["total_w"] == pytest.approx(report.total_w)

    def test_idle_power_is_leakage_only(self, model):
        report = model.power_from_activity(0.0, 0.0, 0.0)
        assert report.sram_dynamic_w == 0.0
        assert report.logic_dynamic_w == 0.0
        assert report.total_w > 0.0

    def test_power_scales_with_activity(self, model):
        low = model.power_from_activity(2.0, 2.0, 2.0)
        high = model.power_from_activity(10.0, 10.0, 8.0)
        assert high.total_w > low.total_w


class TestPowerFromStatistics:
    def _statistics(self, cycles=1_000_000, reads=7_000_000, writes=5_000_000) -> AcceleratorStatistics:
        stats = AcceleratorStatistics()
        stats.total_cycles = cycles
        stats.sram_reads = reads
        stats.sram_writes = writes
        stats.per_pe_cycles = {pe: cycles for pe in range(8)}
        return stats

    def test_power_from_statistics_is_in_the_paper_ballpark(self, model):
        report = model.power_from_statistics(self._statistics())
        assert 0.15 < report.total_w < 0.35

    def test_active_pe_count_is_capped(self, model):
        stats = self._statistics()
        stats.per_pe_cycles = {pe: stats.total_cycles * 2 for pe in range(8)}
        report = model.power_from_statistics(stats)
        capped = model.power_from_activity(
            stats.sram_reads / stats.total_cycles,
            stats.sram_writes / stats.total_cycles,
            8.0,
        )
        assert report.total_w == pytest.approx(capped.total_w)


class TestEnergy:
    def test_energy_is_power_times_latency(self, model):
        report = model.nominal_power()
        assert model.energy_joules(report, 10.0) == pytest.approx(report.total_w * 10.0)

    def test_negative_latency_rejected(self, model):
        with pytest.raises(ValueError):
            model.energy_joules(model.nominal_power(), -1.0)

    def test_fr079_energy_reproduces_table5_with_paper_latency(self, model):
        """250.8 mW x 1.31 s ~ 0.32 J (Table V, FR-079 corridor)."""
        energy = model.energy_joules(model.nominal_power(), 1.31)
        assert energy == pytest.approx(0.32, rel=0.07)

    def test_energy_from_statistics(self, model):
        stats = AcceleratorStatistics()
        stats.total_cycles = 2_000_000
        stats.sram_reads = 14_000_000
        stats.sram_writes = 10_000_000
        stats.per_pe_cycles = {pe: 1_800_000 for pe in range(8)}
        energy = model.energy_from_statistics(stats)
        assert energy > 0.0


class TestTechnologyParameters:
    def test_negative_constants_rejected(self):
        with pytest.raises(ValueError):
            TechnologyParameters(sram_read_energy_pj=-1.0)

    def test_custom_technology_changes_power(self):
        aggressive = PowerModel(DEFAULT_CONFIG, TechnologyParameters(sram_read_energy_pj=1.0, sram_write_energy_pj=1.0))
        default = PowerModel(DEFAULT_CONFIG)
        assert aggressive.nominal_power().total_w < default.nominal_power().total_w
