"""Unit tests for the operation counters."""


from repro.octomap.counters import OperationCounters, OperationKind


class TestOperationKind:
    def test_ordered_stages_match_the_paper(self):
        assert OperationKind.ordered() == (
            OperationKind.RAY_CASTING,
            OperationKind.UPDATE_LEAF,
            OperationKind.UPDATE_PARENTS,
            OperationKind.PRUNE_EXPAND,
        )

    def test_values_are_stable_strings(self):
        assert OperationKind.PRUNE_EXPAND.value == "prune_expand"


class TestOperationCounters:
    def test_fresh_counters_are_zero(self):
        counters = OperationCounters()
        assert all(value == 0 for value in counters.as_dict().values())
        assert counters.voxel_updates == 0

    def test_reset(self):
        counters = OperationCounters(leaf_updates=5, prunes=2)
        counters.extra["custom"] = 3
        counters.reset()
        assert counters.leaf_updates == 0
        assert counters.extra == {}

    def test_merge_accumulates_all_fields(self):
        a = OperationCounters(leaf_updates=1, ray_steps=2, child_reads=8)
        b = OperationCounters(leaf_updates=3, prunes=1)
        b.extra["pe_updates"] = 7
        a.merge(b)
        assert a.leaf_updates == 4
        assert a.ray_steps == 2
        assert a.prunes == 1
        assert a.extra["pe_updates"] == 7

    def test_merge_extra_accumulates(self):
        a = OperationCounters()
        a.extra["x"] = 1
        b = OperationCounters()
        b.extra["x"] = 2
        a.merge(b)
        assert a.extra["x"] == 3

    def test_copy_is_independent(self):
        original = OperationCounters(leaf_updates=1)
        duplicate = original.copy()
        duplicate.leaf_updates = 99
        duplicate.extra["y"] = 1
        assert original.leaf_updates == 1
        assert "y" not in original.extra

    def test_voxel_updates_alias(self):
        assert OperationCounters(leaf_updates=42).voxel_updates == 42

    def test_counts_by_stage_covers_all_stages(self):
        counters = OperationCounters(
            ray_steps=10, leaf_updates=5, parent_updates=7, prune_checks=3, prunes=1, expansions=2
        )
        by_stage = counters.counts_by_stage()
        assert by_stage[OperationKind.RAY_CASTING] == 10
        assert by_stage[OperationKind.UPDATE_LEAF] == 5
        assert by_stage[OperationKind.UPDATE_PARENTS] == 7
        assert by_stage[OperationKind.PRUNE_EXPAND] == 6

    def test_as_dict_includes_extra(self):
        counters = OperationCounters()
        counters.extra["bank_conflicts"] = 4
        assert counters.as_dict()["bank_conflicts"] == 4
