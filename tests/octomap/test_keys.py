"""Unit tests for voxel keys and coordinate conversion."""

import pytest

from repro.octomap.keys import KeyConverter, OcTreeKey


class TestOcTreeKey:
    def test_component_range_validation(self):
        with pytest.raises(ValueError):
            OcTreeKey(-1, 0, 0)
        with pytest.raises(ValueError):
            OcTreeKey(0, 70000, 0)

    def test_as_tuple(self):
        assert OcTreeKey(1, 2, 3).as_tuple() == (1, 2, 3)

    def test_keys_are_hashable_and_comparable(self):
        a = OcTreeKey(1, 2, 3)
        b = OcTreeKey(1, 2, 3)
        c = OcTreeKey(1, 2, 4)
        assert a == b
        assert len({a, b, c}) == 2
        assert a < c

    def test_child_index_packs_axis_bits(self):
        # Top bit of each component drives the level-0 child index.
        key = OcTreeKey(0x8000, 0x0000, 0x8000)
        assert key.child_index(0, 16) == 0b101

    def test_child_index_at_leaf_level_uses_lowest_bit(self):
        key = OcTreeKey(1, 0, 1)
        assert key.child_index(15, 16) == 0b101

    def test_child_index_level_bounds(self):
        key = OcTreeKey(0, 0, 0)
        with pytest.raises(ValueError):
            key.child_index(16, 16)
        with pytest.raises(ValueError):
            key.child_index(-1, 16)

    def test_path_has_one_entry_per_level(self):
        key = OcTreeKey(0xABCD, 0x1234, 0x8765)
        path = key.path(16)
        assert len(path) == 16
        assert all(0 <= index <= 7 for index in path)

    def test_path_reconstructs_key(self):
        key = OcTreeKey(0xABCD, 0x1234, 0x8765)
        kx = ky = kz = 0
        for level, index in enumerate(key.path(16)):
            bit = 16 - 1 - level
            kx |= ((index >> 0) & 1) << bit
            ky |= ((index >> 1) & 1) << bit
            kz |= ((index >> 2) & 1) << bit
        assert (kx, ky, kz) == key.as_tuple()

    def test_at_depth_full_depth_is_identity(self):
        key = OcTreeKey(123, 456, 789)
        assert key.at_depth(16, 16) == key

    def test_at_depth_coarser_centres_the_region(self):
        key = OcTreeKey(0x8003, 0x8002, 0x8001)
        coarse = key.at_depth(14, 16)
        # Coarsening by 2 levels masks the low 2 bits and adds half the span.
        assert coarse == OcTreeKey(0x8002, 0x8002, 0x8002)

    def test_at_depth_bounds(self):
        key = OcTreeKey(0, 0, 0)
        with pytest.raises(ValueError):
            key.at_depth(17, 16)

    def test_neighbours_count_inside_volume(self):
        assert len(list(OcTreeKey(100, 100, 100).neighbours())) == 6

    def test_neighbours_clipped_at_the_boundary(self):
        assert len(list(OcTreeKey(0, 0, 0).neighbours())) == 3


class TestKeyConverter:
    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            KeyConverter(0.0)
        with pytest.raises(ValueError):
            KeyConverter(-0.1)

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            KeyConverter(0.1, tree_depth=0)
        with pytest.raises(ValueError):
            KeyConverter(0.1, tree_depth=20)

    def test_origin_maps_to_centre_of_key_space(self):
        converter = KeyConverter(0.1)
        key = converter.coord_to_key(0.0, 0.0, 0.0)
        assert key.as_tuple() == (32768, 32768, 32768)

    def test_key_to_coord_returns_voxel_centre(self):
        converter = KeyConverter(0.1)
        key = converter.coord_to_key(0.0, 0.0, 0.0)
        assert converter.key_to_coord(key) == pytest.approx((0.05, 0.05, 0.05))

    def test_coord_key_roundtrip_stays_in_voxel(self):
        converter = KeyConverter(0.05)
        for point in ((1.234, -5.678, 9.01), (-0.01, 0.01, 0.0), (100.0, -100.0, 55.5)):
            key = converter.coord_to_key(*point)
            centre = converter.key_to_coord(key)
            for axis in range(3):
                assert abs(centre[axis] - point[axis]) <= converter.resolution / 2.0 + 1e-9

    def test_negative_coordinates_map_below_centre(self):
        converter = KeyConverter(0.2)
        key = converter.coord_to_key(-0.1, -0.3, -0.5)
        assert key.x == 32767
        assert key.y == 32766
        assert key.z == 32765

    def test_out_of_range_coordinate_raises(self):
        converter = KeyConverter(0.1, tree_depth=16)
        with pytest.raises(ValueError):
            converter.coord_to_key(converter.max_coordinate + 1.0, 0.0, 0.0)

    def test_is_coordinate_in_range(self):
        converter = KeyConverter(0.1)
        assert converter.is_coordinate_in_range(0.0, 0.0, 0.0)
        assert not converter.is_coordinate_in_range(1e6, 0.0, 0.0)

    def test_node_size_doubles_per_level(self):
        converter = KeyConverter(0.1, tree_depth=16)
        assert converter.node_size(16) == pytest.approx(0.1)
        assert converter.node_size(15) == pytest.approx(0.2)
        assert converter.node_size(0) == pytest.approx(0.1 * 65536)

    def test_node_size_depth_bounds(self):
        converter = KeyConverter(0.1)
        with pytest.raises(ValueError):
            converter.node_size(17)

    def test_key_component_to_coord_at_coarse_depth(self):
        converter = KeyConverter(0.2, tree_depth=16)
        key = converter.coord_to_key(1.0, 1.0, 1.0)
        coarse_key = key.at_depth(14, 16)
        coord = converter.key_to_coord(coarse_key, depth=14)
        # A depth-14 voxel is 0.8 m wide; its centre must be within 0.4 m.
        for axis in range(3):
            assert abs(coord[axis] - 1.0) <= 0.4 + 1e-9

    def test_max_coordinate_scales_with_resolution(self):
        assert KeyConverter(0.1).max_coordinate == pytest.approx(3276.8)
        assert KeyConverter(0.2).max_coordinate == pytest.approx(6553.6)

    def test_shallow_tree_depth(self):
        converter = KeyConverter(1.0, tree_depth=4)
        assert converter.tree_max_val == 8
        key = converter.coord_to_key(0.0, 0.0, 0.0)
        assert key.as_tuple() == (8, 8, 8)
        with pytest.raises(ValueError):
            converter.coord_to_key(9.0, 0.0, 0.0)
