"""Unit tests for the log-odds occupancy arithmetic."""

import math

import pytest

from repro.octomap.logodds import DEFAULT_PARAMS, OccupancyParams, log_odds, probability


class TestConversions:
    def test_log_odds_of_half_is_zero(self):
        assert log_odds(0.5) == pytest.approx(0.0)

    def test_log_odds_is_symmetric(self):
        assert log_odds(0.7) == pytest.approx(-log_odds(0.3))

    def test_probability_inverts_log_odds(self):
        for value in (0.05, 0.12, 0.5, 0.7, 0.9, 0.971):
            assert probability(log_odds(value)) == pytest.approx(value)

    def test_log_odds_of_hit_probability(self):
        # The OctoMap default hit probability 0.7 corresponds to ~0.8473.
        assert log_odds(0.7) == pytest.approx(math.log(0.7 / 0.3))

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
    def test_log_odds_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError):
            log_odds(bad)

    def test_probability_handles_large_magnitudes(self):
        assert probability(50.0) == pytest.approx(1.0, abs=1e-12)
        assert probability(-50.0) == pytest.approx(0.0, abs=1e-12)


class TestOccupancyParams:
    def test_default_values_match_octomap_library(self):
        params = DEFAULT_PARAMS
        assert params.prob_hit == pytest.approx(0.7)
        assert params.prob_miss == pytest.approx(0.4)
        assert params.clamp_min_probability == pytest.approx(0.1192)
        assert params.clamp_max_probability == pytest.approx(0.971)
        assert params.occupancy_threshold == pytest.approx(0.5)

    def test_derived_log_odds_fields(self):
        params = DEFAULT_PARAMS
        assert params.log_odds_hit == pytest.approx(log_odds(0.7))
        assert params.log_odds_miss == pytest.approx(log_odds(0.4))
        assert params.clamp_min == pytest.approx(log_odds(0.1192))
        assert params.clamp_max == pytest.approx(log_odds(0.971))

    def test_hit_update_is_an_addition(self):
        params = DEFAULT_PARAMS
        assert params.update(0.0, hit=True) == pytest.approx(params.log_odds_hit)

    def test_miss_update_is_an_addition(self):
        params = DEFAULT_PARAMS
        assert params.update(0.0, hit=False) == pytest.approx(params.log_odds_miss)

    def test_updates_clamp_at_maximum(self):
        params = DEFAULT_PARAMS
        value = 0.0
        for _ in range(50):
            value = params.update(value, hit=True)
        assert value == pytest.approx(params.clamp_max)

    def test_updates_clamp_at_minimum(self):
        params = DEFAULT_PARAMS
        value = 0.0
        for _ in range(50):
            value = params.update(value, hit=False)
        assert value == pytest.approx(params.clamp_min)

    def test_clamp_passes_values_inside_the_band(self):
        params = DEFAULT_PARAMS
        assert params.clamp(0.25) == pytest.approx(0.25)

    def test_is_occupied_threshold(self):
        params = DEFAULT_PARAMS
        assert params.is_occupied(0.1)
        assert not params.is_occupied(0.0)
        assert not params.is_occupied(-0.5)

    def test_is_at_clamping_limit(self):
        params = DEFAULT_PARAMS
        assert params.is_at_clamping_limit(params.clamp_max)
        assert params.is_at_clamping_limit(params.clamp_min)
        assert not params.is_at_clamping_limit(0.0)

    def test_custom_params_validation_hit_must_exceed_half(self):
        with pytest.raises(ValueError):
            OccupancyParams(prob_hit=0.4)

    def test_custom_params_validation_miss_must_be_below_half(self):
        with pytest.raises(ValueError):
            OccupancyParams(prob_miss=0.6)

    def test_custom_params_validation_clamp_ordering(self):
        with pytest.raises(ValueError):
            OccupancyParams(clamp_min_probability=0.99, clamp_max_probability=0.2)

    def test_custom_params_validation_probability_range(self):
        with pytest.raises(ValueError):
            OccupancyParams(occupancy_threshold=1.2)

    def test_hit_then_miss_partially_cancels(self):
        params = DEFAULT_PARAMS
        value = params.update(0.0, hit=True)
        value = params.update(value, hit=False)
        assert value == pytest.approx(params.log_odds_hit + params.log_odds_miss)
        # hit magnitude exceeds miss magnitude, so the net effect is occupied-leaning
        assert value > 0.0
