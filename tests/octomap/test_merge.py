"""Tree merging (shard stitching): grafting leaves, coarse regions, errors."""

from __future__ import annotations

import pytest

from repro.octomap import OccupancyOcTree, graft_leaf, merge_tree, merge_trees
from repro.octomap.keys import OcTreeKey


def _tree(resolution=0.25, depth=16):
    return OccupancyOcTree(resolution, tree_depth=depth)


def test_merge_disjoint_trees_preserves_every_leaf():
    left, right = _tree(), _tree()
    left.update_node(1.0, 1.0, 1.0, occupied=True)
    left.update_node(2.0, 1.0, 0.5, occupied=False)
    right.update_node(-1.0, -1.0, -1.0, occupied=True)

    target = _tree()
    assert merge_tree(target, left) == left.num_leaf_nodes()
    assert merge_tree(target, right) == right.num_leaf_nodes()

    for source in (left, right):
        for leaf in source.iter_leafs():
            node = target.search(leaf.key)
            assert node is not None
            assert node.log_odds == pytest.approx(leaf.log_odds)
    assert target.size() == _count_nodes(target.root)


def _count_nodes(node):
    if node is None:
        return 0
    return 1 + sum(_count_nodes(child) for _, child in node.children())


def test_merge_preserves_classification_against_single_tree_build():
    # Build the same map in one tree, and split across two trees by x sign.
    updates = [
        (1.0, 0.5, 0.2, True),
        (1.5, -0.5, 0.2, True),
        (-1.0, 0.5, 0.2, False),
        (-1.5, 1.5, 0.0, True),
        (1.0, 0.5, 0.2, True),  # re-observe
    ]
    whole, left, right = _tree(), _tree(), _tree()
    for x, y, z, occupied in updates:
        whole.update_node(x, y, z, occupied=occupied)
        (left if x < 0 else right).update_node(x, y, z, occupied=occupied)
    whole.prune()

    stitched = merge_trees([left, right])
    assert stitched.occupancy_grid() == whole.occupancy_grid()


def test_graft_coarse_leaf_covers_whole_region():
    source = _tree()
    # A pruned homogeneous region: all eight children of one depth-15 node.
    base = OcTreeKey(32768, 32768, 32768)
    for dx in range(2):
        for dy in range(2):
            for dz in range(2):
                source.update_node(
                    OcTreeKey(base.x + dx, base.y + dy, base.z + dz), occupied=True
                )
    source.prune()
    coarse = [leaf for leaf in source.iter_leafs() if leaf.depth < source.tree_depth]
    assert coarse, "pruning should have produced a coarse leaf"

    target = _tree()
    merge_tree(target, source)
    for dx in range(2):
        for dy in range(2):
            for dz in range(2):
                key = OcTreeKey(base.x + dx, base.y + dy, base.z + dz)
                node = target.search(key)
                assert node is not None
                assert target.is_node_occupied(node)


def test_graft_replaces_finer_structure():
    target = _tree()
    key = OcTreeKey(32770, 32770, 32770)
    target.update_node(key, occupied=True)
    # Graft a coarse free region over the occupied leaf.
    coarse_key = key.at_depth(13, 16)
    graft_leaf(target, coarse_key, 13, -1.5)
    target.update_inner_occupancy()
    node = target.search(key)
    assert node is not None
    assert not target.is_node_occupied(node)
    assert target.size() == _count_nodes(target.root)


def test_merge_validates_geometry():
    with pytest.raises(ValueError, match="resolution mismatch"):
        merge_tree(_tree(resolution=0.25), _tree(resolution=0.2))
    with pytest.raises(ValueError, match="depth mismatch"):
        merge_tree(_tree(depth=16), _tree(depth=12))
    with pytest.raises(ValueError, match="at least one source"):
        merge_trees([])


def test_merge_into_empty_and_from_empty():
    source = _tree()
    source.update_node(0.5, 0.5, 0.5, occupied=True)
    target = _tree()
    merge_tree(target, _tree())  # empty source: no-op
    assert target.is_empty()
    merge_tree(target, source)
    assert not target.is_empty()


def test_graft_leaf_validates_depth():
    tree = _tree()
    with pytest.raises(ValueError, match="depth"):
        graft_leaf(tree, OcTreeKey(0, 0, 0), 17, 0.5)
