"""Unit tests for the octree node and the pruning predicate."""

import pytest

from repro.octomap.node import OcTreeNode


class TestChildManagement:
    def test_new_node_is_a_leaf(self):
        node = OcTreeNode(0.5)
        assert not node.has_children()
        assert node.num_children() == 0
        assert node.log_odds == pytest.approx(0.5)

    def test_create_child_inherits_value(self):
        node = OcTreeNode()
        child = node.create_child(3, log_odds=1.25)
        assert node.child_exists(3)
        assert child.log_odds == pytest.approx(1.25)

    def test_create_child_is_idempotent(self):
        node = OcTreeNode()
        first = node.create_child(2, 1.0)
        second = node.create_child(2, 9.0)
        assert first is second
        assert second.log_odds == pytest.approx(1.0)

    def test_child_index_bounds(self):
        node = OcTreeNode()
        with pytest.raises(IndexError):
            node.create_child(8)
        with pytest.raises(IndexError):
            node.child(-1)

    def test_delete_child(self):
        node = OcTreeNode()
        node.create_child(5)
        node.delete_child(5)
        assert not node.has_children()
        assert node.child(5) is None

    def test_delete_children_returns_count(self):
        node = OcTreeNode()
        for index in range(4):
            node.create_child(index)
        assert node.delete_children() == 4
        assert node.delete_children() == 0

    def test_children_iteration_yields_existing_only(self):
        node = OcTreeNode()
        node.create_child(1)
        node.create_child(6)
        indices = [index for index, _ in node.children()]
        assert indices == [1, 6]


class TestOccupancyAggregation:
    def test_max_child_log_odds(self):
        node = OcTreeNode()
        node.create_child(0, -1.0)
        node.create_child(1, 2.0)
        node.create_child(2, 0.5)
        assert node.max_child_log_odds() == pytest.approx(2.0)

    def test_max_child_without_children_raises(self):
        with pytest.raises(ValueError):
            OcTreeNode().max_child_log_odds()

    def test_update_occupancy_from_children(self):
        node = OcTreeNode(-5.0)
        node.create_child(0, 0.3)
        node.create_child(7, 0.9)
        node.update_occupancy_from_children()
        assert node.log_odds == pytest.approx(0.9)


class TestPruning:
    def _node_with_identical_children(self, value: float = 1.5) -> OcTreeNode:
        node = OcTreeNode()
        for index in range(8):
            node.create_child(index, value)
        return node

    def test_prunable_with_eight_identical_leaves(self):
        assert self._node_with_identical_children().is_prunable()

    def test_not_prunable_with_missing_child(self):
        node = OcTreeNode()
        for index in range(7):
            node.create_child(index, 1.0)
        assert not node.is_prunable()

    def test_not_prunable_with_differing_values(self):
        node = self._node_with_identical_children()
        node.child(3).log_odds = 0.25
        assert not node.is_prunable()

    def test_not_prunable_when_a_child_has_children(self):
        node = self._node_with_identical_children()
        node.child(0).create_child(0, 1.5)
        assert not node.is_prunable()

    def test_leaf_is_not_prunable(self):
        assert not OcTreeNode(1.0).is_prunable()

    def test_prune_collapses_children_and_adopts_value(self):
        node = self._node_with_identical_children(0.75)
        deleted = node.prune()
        assert deleted == 8
        assert not node.has_children()
        assert node.log_odds == pytest.approx(0.75)

    def test_prune_on_non_prunable_node_is_a_no_op(self):
        node = OcTreeNode()
        node.create_child(0, 1.0)
        assert node.prune() == 0
        assert node.has_children()

    def test_prune_tolerates_tiny_float_noise(self):
        node = self._node_with_identical_children(1.0)
        node.child(4).log_odds = 1.0 + 1e-12
        assert node.is_prunable()

    def test_expand_recreates_children_with_parent_value(self):
        node = OcTreeNode(0.6)
        created = node.expand()
        assert created == 8
        assert node.num_children() == 8
        assert all(child.log_odds == pytest.approx(0.6) for _, child in node.children())

    def test_expand_on_inner_node_raises(self):
        node = OcTreeNode()
        node.create_child(0)
        with pytest.raises(ValueError):
            node.expand()

    def test_prune_then_expand_roundtrip(self):
        node = self._node_with_identical_children(-0.4)
        node.prune()
        node.expand()
        assert node.is_prunable()
        assert node.max_child_log_odds() == pytest.approx(-0.4)
