"""Unit and behavioural tests for the occupancy octree."""

import pytest

from repro.octomap.keys import OcTreeKey
from repro.octomap.logodds import DEFAULT_PARAMS
from repro.octomap.octree import OccupancyOcTree


@pytest.fixture
def tree() -> OccupancyOcTree:
    return OccupancyOcTree(0.1)


class TestBasics:
    def test_new_tree_is_empty(self, tree):
        assert tree.is_empty()
        assert tree.size() == 0
        assert len(tree) == 0
        assert tree.search(0.0, 0.0, 0.0) is None

    def test_clear_resets_the_tree(self, tree):
        tree.update_node(1.0, 1.0, 1.0, occupied=True)
        tree.clear()
        assert tree.is_empty()
        assert tree.search(1.0, 1.0, 1.0) is None

    def test_properties(self, tree):
        assert tree.resolution == pytest.approx(0.1)
        assert tree.tree_depth == 16
        assert tree.params is DEFAULT_PARAMS

    def test_node_size_delegation(self, tree):
        assert tree.node_size(16) == pytest.approx(0.1)
        assert tree.node_size(15) == pytest.approx(0.2)


class TestUpdateAndSearch:
    def test_single_occupied_update_creates_full_path(self, tree):
        node = tree.update_node(0.55, 0.55, 0.55, occupied=True)
        assert node.log_odds == pytest.approx(DEFAULT_PARAMS.log_odds_hit)
        # root + one node per level below it
        assert tree.size() == 1 + tree.tree_depth

    def test_search_finds_updated_voxel(self, tree):
        tree.update_node(0.55, 0.55, 0.55, occupied=True)
        node = tree.search(0.55, 0.55, 0.55)
        assert node is not None
        assert tree.is_node_occupied(node)

    def test_search_by_key(self, tree):
        key = tree.coord_to_key(0.55, 0.55, 0.55)
        tree.update_node(key, occupied=True)
        assert tree.search(key) is not None

    def test_unobserved_sibling_is_unknown(self, tree):
        tree.update_node(0.55, 0.55, 0.55, occupied=True)
        assert tree.search(0.55, 0.55, 0.85) is None
        assert tree.classify(0.55, 0.55, 0.85) == "unknown"

    def test_free_update_classifies_as_free(self, tree):
        tree.update_node(0.35, 0.35, 0.35, occupied=False)
        assert tree.classify(0.35, 0.35, 0.35) == "free"

    def test_repeated_hits_saturate_at_clamp(self, tree):
        for _ in range(30):
            node = tree.update_node(1.0, 1.0, 1.0, occupied=True)
        assert node.log_odds == pytest.approx(DEFAULT_PARAMS.clamp_max)

    def test_hits_then_misses_can_flip_classification(self, tree):
        for _ in range(2):
            tree.update_node(1.0, 1.0, 1.0, occupied=True)
        for _ in range(8):
            tree.update_node(1.0, 1.0, 1.0, occupied=False)
        assert tree.classify(1.0, 1.0, 1.0) == "free"

    def test_parent_takes_max_of_children(self, tree):
        tree.update_node(0.55, 0.55, 0.55, occupied=True)
        tree.update_node(0.45, 0.55, 0.55, occupied=False)
        parent = tree.search(0.55, 0.55, 0.55, depth=tree.tree_depth - 1)
        assert parent is not None
        assert parent.log_odds == pytest.approx(DEFAULT_PARAMS.log_odds_hit)

    def test_parent_search_at_coarse_depth(self, tree):
        tree.update_node(0.55, 0.55, 0.55, occupied=True)
        coarse = tree.search(0.55, 0.55, 0.55, depth=4)
        assert coarse is not None
        assert tree.is_node_occupied(coarse)

    def test_metric_lookup_requires_all_coordinates(self, tree):
        with pytest.raises(TypeError):
            tree.search(1.0)

    def test_update_counts_leaf_updates(self, tree):
        tree.update_node(0.1, 0.1, 0.1, occupied=True)
        tree.update_node(0.1, 0.1, 0.1, occupied=True)
        assert tree.counters.leaf_updates == 2

    def test_set_node_log_odds(self, tree):
        key = tree.coord_to_key(0.9, 0.9, 0.9)
        node = tree.set_node_log_odds(key, 1.1)
        assert node.log_odds == pytest.approx(1.1)
        assert tree.classify(0.9, 0.9, 0.9) == "occupied"

    def test_set_node_log_odds_clamps(self, tree):
        key = tree.coord_to_key(0.9, 0.9, 0.9)
        node = tree.set_node_log_odds(key, 99.0)
        assert node.log_odds == pytest.approx(DEFAULT_PARAMS.clamp_max)


class TestPruningBehaviour:
    def _fill_block(self, tree: OccupancyOcTree, base=(1.0, 1.0, 1.0), occupied=True, repeats=20):
        """Saturate the eight sibling voxels of one parent block."""
        base_key = tree.coord_to_key(*base)
        # Align to an even key so the eight siblings share one parent.
        kx, ky, kz = (component & ~1 for component in base_key.as_tuple())
        for dx in range(2):
            for dy in range(2):
                for dz in range(2):
                    key = OcTreeKey(kx + dx, ky + dy, kz + dz)
                    for _ in range(repeats):
                        tree.update_node(key, occupied=occupied)
        return OcTreeKey(kx, ky, kz)

    def test_saturated_block_is_pruned_automatically(self, tree):
        self._fill_block(tree)
        assert tree.counters.prunes >= 1

    def test_pruned_block_still_answers_queries(self, tree):
        base_key = self._fill_block(tree)
        node = tree.search(base_key)
        assert node is not None
        assert tree.is_node_occupied(node)

    def test_pruning_reduces_node_count(self, tree):
        self._fill_block(tree)
        pruned_size = tree.size()
        tree.expand()
        assert tree.size() > pruned_size
        tree.prune()
        assert tree.size() == pruned_size

    def test_update_inside_pruned_region_expands(self, tree):
        base_key = self._fill_block(tree)
        expansions_before = tree.counters.expansions
        # A free observation inside the pruned block must force re-expansion.
        tree.update_node(base_key, occupied=False)
        assert tree.counters.expansions > expansions_before

    def test_explicit_prune_is_idempotent(self, tree):
        self._fill_block(tree)
        first = tree.prune()
        second = tree.prune()
        assert second == 0
        assert first >= 0

    def test_memory_usage_tracks_node_count(self, tree):
        tree.update_node(1.0, 1.0, 1.0, occupied=True)
        assert tree.memory_usage(per_node_bytes=16) == tree.size() * 16

    def test_memory_usage_unpruned_is_never_smaller(self, tree):
        self._fill_block(tree)
        assert tree.memory_usage_unpruned() >= tree.memory_usage()


class TestIterationAndBounds:
    def test_iter_leafs_contains_updated_voxel(self, tree):
        tree.update_node(0.55, 0.55, 0.55, occupied=True)
        leaves = list(tree.iter_leafs())
        assert len(leaves) == 1
        leaf = leaves[0]
        assert leaf.depth == tree.tree_depth
        assert leaf.center == pytest.approx((0.55, 0.55, 0.55))

    def test_iter_occupied_and_free_partition_leaves(self, tree):
        tree.update_node(0.55, 0.55, 0.55, occupied=True)
        tree.update_node(-0.55, -0.55, -0.55, occupied=False)
        occupied = list(tree.iter_occupied())
        free = list(tree.iter_free())
        assert len(occupied) == 1
        assert len(free) == 1

    def test_iter_leafs_with_depth_cutoff(self, tree):
        tree.update_node(0.55, 0.55, 0.55, occupied=True)
        coarse = list(tree.iter_leafs(max_depth=4))
        assert len(coarse) == 1
        assert coarse[0].depth == 4

    def test_num_leaf_nodes(self, two_scan_graph):
        tree = OccupancyOcTree(0.2)
        for scan in two_scan_graph:
            tree.insert_point_cloud(scan.world_cloud(), scan.origin())
        assert tree.num_leaf_nodes() == len(list(tree.iter_leafs()))

    def test_metric_bounds_covers_observations(self, tree):
        tree.update_node(1.0, 2.0, 3.0, occupied=True)
        tree.update_node(-1.0, -2.0, -3.0, occupied=False)
        minimum, maximum = tree.metric_bounds()
        assert minimum[0] <= -1.0 <= maximum[0]
        assert minimum[1] <= -2.0 <= maximum[1]
        assert minimum[2] <= -3.0 <= maximum[2]
        assert maximum[2] >= 3.0

    def test_metric_bounds_of_empty_tree_raises(self, tree):
        with pytest.raises(ValueError):
            tree.metric_bounds()

    def test_occupancy_grid_matches_leaves(self, tree):
        tree.update_node(0.55, 0.55, 0.55, occupied=True)
        grid = tree.occupancy_grid()
        key = tree.coord_to_key(0.55, 0.55, 0.55)
        assert key.as_tuple() in grid
        assert grid[key.as_tuple()] == pytest.approx(DEFAULT_PARAMS.log_odds_hit)


class TestLazyEvaluation:
    def test_lazy_updates_need_inner_occupancy_refresh(self, tree):
        tree.update_node(0.55, 0.55, 0.55, occupied=True, lazy_eval=True)
        tree.update_inner_occupancy()
        coarse = tree.search(0.55, 0.55, 0.55, depth=2)
        assert coarse is not None
        assert tree.is_node_occupied(coarse)

    def test_lazy_insertion_then_prune_matches_eager(self, two_scan_graph):
        eager = OccupancyOcTree(0.2)
        lazy = OccupancyOcTree(0.2)
        for scan in two_scan_graph:
            eager.insert_point_cloud(scan.world_cloud(), scan.origin())
            lazy.insert_point_cloud(scan.world_cloud(), scan.origin(), lazy_prune=True)
        eager.prune()
        lazy.prune()
        assert eager.occupancy_grid() == pytest.approx(lazy.occupancy_grid())
