"""Unit tests for point clouds, poses, scan nodes and scan graphs."""

import math

import numpy as np
import pytest

from repro.octomap.pointcloud import PointCloud, Pose6D, ScanGraph, ScanNode


class TestPointCloud:
    def test_empty_cloud(self):
        cloud = PointCloud()
        assert len(cloud) == 0
        assert list(cloud) == []

    def test_construction_from_list(self):
        cloud = PointCloud([(1.0, 2.0, 3.0), (4.0, 5.0, 6.0)])
        assert len(cloud) == 2
        assert cloud[1] == (4.0, 5.0, 6.0)

    def test_construction_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            PointCloud(np.zeros((3, 2)))

    def test_append_and_extend(self):
        cloud = PointCloud()
        cloud.append(1.0, 1.0, 1.0)
        cloud.extend([(2.0, 2.0, 2.0), (3.0, 3.0, 3.0)])
        assert len(cloud) == 3

    def test_extend_empty_is_noop(self):
        cloud = PointCloud([(1.0, 1.0, 1.0)])
        cloud.extend([])
        assert len(cloud) == 1

    def test_iteration_yields_tuples(self):
        cloud = PointCloud([(1.0, 2.0, 3.0)])
        assert next(iter(cloud)) == (1.0, 2.0, 3.0)

    def test_transformed_translation_only(self):
        cloud = PointCloud([(1.0, 0.0, 0.0)])
        moved = cloud.transformed(Pose6D((0.0, 0.0, 5.0)))
        assert moved[0] == pytest.approx((1.0, 0.0, 5.0))

    def test_transformed_yaw_rotation(self):
        cloud = PointCloud([(1.0, 0.0, 0.0)])
        rotated = cloud.transformed(Pose6D(yaw=math.pi / 2.0))
        assert rotated[0] == pytest.approx((0.0, 1.0, 0.0), abs=1e-12)

    def test_subsampled_limits_size_and_is_deterministic(self):
        cloud = PointCloud([(float(i), 0.0, 0.0) for i in range(100)])
        sub_a = cloud.subsampled(10, seed=3)
        sub_b = cloud.subsampled(10, seed=3)
        assert len(sub_a) == 10
        assert np.allclose(sub_a.points, sub_b.points)

    def test_subsampled_returns_copy_when_small_enough(self):
        cloud = PointCloud([(1.0, 2.0, 3.0)])
        assert len(cloud.subsampled(10)) == 1

    def test_subsampled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            PointCloud().subsampled(0)

    def test_bounds(self):
        cloud = PointCloud([(1.0, -2.0, 3.0), (-1.0, 2.0, -3.0)])
        minimum, maximum = cloud.bounds()
        assert minimum.tolist() == [-1.0, -2.0, -3.0]
        assert maximum.tolist() == [1.0, 2.0, 3.0]

    def test_bounds_of_empty_cloud_raises(self):
        with pytest.raises(ValueError):
            PointCloud().bounds()


class TestPose6D:
    def test_identity_transform(self):
        pose = Pose6D()
        assert pose.transform_point((1.0, 2.0, 3.0)) == pytest.approx((1.0, 2.0, 3.0))

    def test_rotation_matrix_is_orthonormal(self):
        pose = Pose6D(roll=0.3, pitch=-0.2, yaw=1.1)
        rotation = pose.rotation_matrix()
        assert np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(rotation) == pytest.approx(1.0)

    def test_translation_validation(self):
        with pytest.raises(ValueError):
            Pose6D((1.0, 2.0))

    def test_yaw_rotates_about_z(self):
        pose = Pose6D(yaw=math.pi)
        assert pose.transform_point((1.0, 0.0, 0.0)) == pytest.approx((-1.0, 0.0, 0.0), abs=1e-12)

    def test_pitch_rotates_about_y(self):
        pose = Pose6D(pitch=math.pi / 2.0)
        assert pose.transform_point((1.0, 0.0, 0.0)) == pytest.approx((0.0, 0.0, -1.0), abs=1e-12)

    def test_compose_translations(self):
        first = Pose6D((1.0, 0.0, 0.0))
        second = Pose6D((0.0, 2.0, 0.0))
        composed = first.compose(second)
        assert composed.translation == pytest.approx((1.0, 2.0, 0.0))

    def test_compose_yaw_only_is_exact(self):
        first = Pose6D((1.0, 0.0, 0.0), yaw=math.pi / 2.0)
        second = Pose6D((1.0, 0.0, 0.0), yaw=math.pi / 2.0)
        composed = first.compose(second)
        assert composed.yaw == pytest.approx(math.pi)
        assert composed.translation == pytest.approx((1.0, 1.0, 0.0), abs=1e-12)


class TestScanNodeAndGraph:
    def test_world_cloud_applies_the_pose(self):
        scan = ScanNode(PointCloud([(1.0, 0.0, 0.0)]), Pose6D((0.0, 0.0, 1.0), yaw=math.pi / 2.0))
        assert scan.world_cloud()[0] == pytest.approx((0.0, 1.0, 1.0), abs=1e-12)

    def test_origin_is_the_pose_translation(self):
        scan = ScanNode(PointCloud(), Pose6D((1.0, 2.0, 3.0)))
        assert scan.origin() == (1.0, 2.0, 3.0)

    def test_graph_accumulates_scans(self):
        graph = ScanGraph(name="demo")
        graph.add_scan(ScanNode(PointCloud([(1.0, 1.0, 1.0)]), Pose6D(), scan_id=0))
        graph.add_scan(ScanNode(PointCloud([(2.0, 2.0, 2.0), (3.0, 3.0, 3.0)]), Pose6D(), scan_id=1))
        assert len(graph) == 2
        assert graph.total_points() == 3
        assert graph.average_points_per_scan() == pytest.approx(1.5)

    def test_graph_indexing_and_iteration(self):
        scans = [ScanNode(PointCloud(), Pose6D(), scan_id=i) for i in range(3)]
        graph = ScanGraph(scans)
        assert graph[1] is scans[1]
        assert [scan.scan_id for scan in graph] == [0, 1, 2]

    def test_statistics_shape_matches_table2_fields(self):
        graph = ScanGraph([ScanNode(PointCloud([(0.0, 0.0, 0.0)]), Pose6D())], name="x")
        stats = graph.statistics()
        assert set(stats) == {"name", "scan_number", "average_points_per_scan", "point_cloud_total"}

    def test_empty_graph_statistics(self):
        graph = ScanGraph()
        assert graph.average_points_per_scan() == 0.0
        assert graph.total_points() == 0
