"""Unit tests for the 3D DDA ray traversal and map ray queries."""

import math

import pytest

from repro.octomap.counters import OperationCounters
from repro.octomap.keys import KeyConverter
from repro.octomap.octree import OccupancyOcTree
from repro.octomap.raycast import cast_ray, compute_ray_keys


@pytest.fixture
def converter() -> KeyConverter:
    return KeyConverter(0.1)


class TestComputeRayKeys:
    def test_axis_aligned_ray_visits_every_voxel(self, converter):
        keys = compute_ray_keys(converter, (0.05, 0.05, 0.05), (1.05, 0.05, 0.05))
        xs = [key.x for key in keys]
        assert xs == sorted(xs)
        assert len(keys) == 9  # voxels strictly between origin and endpoint

    def test_endpoint_voxel_is_excluded(self, converter):
        end = (1.05, 0.05, 0.05)
        end_key = converter.coord_to_key(*end)
        keys = compute_ray_keys(converter, (0.05, 0.05, 0.05), end)
        assert end_key not in keys

    def test_origin_voxel_is_excluded(self, converter):
        origin = (0.05, 0.05, 0.05)
        origin_key = converter.coord_to_key(*origin)
        keys = compute_ray_keys(converter, origin, (1.05, 0.05, 0.05))
        assert origin_key not in keys

    def test_same_voxel_returns_empty(self, converter):
        assert compute_ray_keys(converter, (0.01, 0.01, 0.01), (0.02, 0.02, 0.02)) == []

    def test_traversal_is_connected(self, converter):
        origin = (0.0, 0.0, 0.0)
        end = (2.3, -1.7, 0.9)
        keys = compute_ray_keys(converter, origin, end)
        full_path = [converter.coord_to_key(*origin)] + keys
        for previous, current in zip(full_path, full_path[1:]):
            step = sum(abs(a - b) for a, b in zip(previous.as_tuple(), current.as_tuple()))
            assert step == 1, "DDA must advance exactly one voxel per step"

    def test_traversal_reaches_the_endpoint_neighbourhood(self, converter):
        origin = (0.0, 0.0, 0.0)
        end = (2.3, -1.7, 0.9)
        keys = compute_ray_keys(converter, origin, end)
        end_key = converter.coord_to_key(*end)
        last = keys[-1]
        gap = sum(abs(a - b) for a, b in zip(last.as_tuple(), end_key.as_tuple()))
        assert gap <= 3

    def test_negative_direction(self, converter):
        keys = compute_ray_keys(converter, (0.05, 0.05, 0.05), (-1.05, 0.05, 0.05))
        xs = [key.x for key in keys]
        assert xs == sorted(xs, reverse=True)

    def test_diagonal_ray_key_count_is_bounded(self, converter):
        origin = (0.0, 0.0, 0.0)
        end = (1.0, 1.0, 1.0)
        keys = compute_ray_keys(converter, origin, end)
        length = math.sqrt(3.0)
        assert len(keys) <= 3 * (length / converter.resolution + 2)

    def test_counters_record_ray_steps(self, converter):
        counters = OperationCounters()
        keys = compute_ray_keys(converter, (0.0, 0.0, 0.0), (1.0, 0.0, 0.0), counters=counters)
        assert counters.ray_steps == len(keys)

    def test_long_ray_many_voxels(self, converter):
        keys = compute_ray_keys(converter, (0.0, 0.0, 0.0), (25.0, 13.0, -7.0))
        assert len(keys) > 200
        assert len(set(keys)) == len(keys), "no voxel is visited twice"


class TestCastRay:
    @pytest.fixture
    def wall_tree(self) -> OccupancyOcTree:
        tree = OccupancyOcTree(0.1)
        for y in range(-5, 6):
            for z in range(-5, 6):
                for _ in range(3):
                    tree.update_node(2.05, y * 0.1 + 0.05, z * 0.1 + 0.05, occupied=True)
        # free corridor between the sensor and the wall
        for x in range(1, 20):
            tree.update_node(x * 0.1 + 0.05, 0.05, 0.05, occupied=False)
        return tree

    def test_ray_hits_wall(self, wall_tree):
        result = cast_ray(wall_tree, (0.0, 0.05, 0.05), (1.0, 0.0, 0.0))
        assert result.hit
        assert result.end_point[0] == pytest.approx(2.05, abs=0.1)

    def test_ray_distance_is_consistent(self, wall_tree):
        origin = (0.0, 0.05, 0.05)
        result = cast_ray(wall_tree, origin, (1.0, 0.0, 0.0))
        expected = math.sqrt(sum((result.end_point[i] - origin[i]) ** 2 for i in range(3)))
        assert result.distance == pytest.approx(expected)

    def test_ray_missing_everything_reports_no_hit(self, wall_tree):
        result = cast_ray(wall_tree, (0.0, 0.05, 0.05), (-1.0, 0.0, 0.0), max_range=3.0)
        assert not result.hit

    def test_max_range_stops_before_the_wall(self, wall_tree):
        result = cast_ray(wall_tree, (0.0, 0.05, 0.05), (1.0, 0.0, 0.0), max_range=1.0)
        assert not result.hit

    def test_unknown_space_can_terminate_the_walk(self, wall_tree):
        result = cast_ray(
            wall_tree, (0.0, 0.05, 0.05), (0.0, 1.0, 0.0), max_range=3.0, ignore_unknown=False
        )
        assert not result.hit
        assert result.end_key is not None

    def test_zero_direction_raises(self, wall_tree):
        with pytest.raises(ValueError):
            cast_ray(wall_tree, (0.0, 0.0, 0.0), (0.0, 0.0, 0.0))

    def test_direction_is_normalised_internally(self, wall_tree):
        slow = cast_ray(wall_tree, (0.0, 0.05, 0.05), (1.0, 0.0, 0.0))
        fast = cast_ray(wall_tree, (0.0, 0.05, 0.05), (10.0, 0.0, 0.0))
        assert slow.hit and fast.hit
        assert slow.end_key == fast.end_key
