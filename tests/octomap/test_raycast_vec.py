"""Vectorized front-end kernel: equivalence with the scalar DDA, edge cases.

The contract under test is strict: for any scan, the packed key arrays of
:mod:`repro.octomap.raycast_vec` must match the scalar reference
(:func:`~repro.octomap.scan_insertion.compute_update_keys_for_converter`)
key for key -- including max-range truncation, endpoint clipping at the
addressable-volume boundary (clipped beams register no occupied endpoint),
the out-of-range-origin raise semantics, and the pre-dedup visit count the
stats layer consumes.  A hypothesis suite pins the equivalence on random
scans; the named tests nail the edge cases one at a time.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address_gen import AddressGenerator
from repro.octomap.counters import OperationCounters
from repro.octomap.keys import KeyConverter, OcTreeKey
from repro.octomap.raycast_vec import (
    compute_batch_update_arrays,
    compute_scan_update_arrays,
    compute_update_keys_vectorized,
    pack_key_array,
    unpack_key_array,
)
from repro.octomap.scan_insertion import compute_update_keys_for_converter


@pytest.fixture
def converter() -> KeyConverter:
    return KeyConverter(0.1)


def _scalar(converter, points, origin, max_range=-1.0, counters=None):
    return compute_update_keys_for_converter(
        converter, np.asarray(points, dtype=np.float64), origin,
        max_range=max_range, counters=counters,
    )


def _vectorized(converter, points, origin, max_range=-1.0, counters=None):
    return compute_update_keys_vectorized(
        converter, np.asarray(points, dtype=np.float64), origin,
        max_range=max_range, counters=counters,
    )


def _assert_equivalent(converter, points, origin, max_range=-1.0):
    scalar_counters = OperationCounters()
    vector_counters = OperationCounters()
    scalar_error = vector_error = None
    try:
        free_s, occ_s = _scalar(converter, points, origin, max_range, scalar_counters)
    except ValueError as exc:
        scalar_error = exc
    try:
        free_v, occ_v = _vectorized(converter, points, origin, max_range, vector_counters)
    except ValueError as exc:
        vector_error = exc
    assert (scalar_error is None) == (vector_error is None), (
        scalar_error,
        vector_error,
    )
    if scalar_error is not None:
        return
    assert free_v == free_s
    assert occ_v == occ_s
    assert vector_counters.ray_steps == scalar_counters.ray_steps


class TestPackedKeys:
    def test_pack_unpack_roundtrip(self):
        keys = np.array(
            [[0, 0, 0], [1, 2, 3], [0xFFFF, 0xFFFF, 0xFFFF], [32768, 1, 65535]],
            dtype=np.int64,
        )
        assert np.array_equal(unpack_key_array(pack_key_array(keys)), keys)

    def test_packed_sort_order_matches_octreekey_sort(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 0x10000, size=(200, 3), dtype=np.int64)
        packed_sorted = unpack_key_array(np.sort(pack_key_array(keys)))
        object_sorted = sorted(OcTreeKey(x, y, z) for x, y, z in keys.tolist())
        assert [tuple(row) for row in packed_sorted.tolist()] == [
            key.as_tuple() for key in object_sorted
        ]


class TestCoordsToKeyArray:
    def test_matches_scalar_conversion(self, converter):
        rng = np.random.default_rng(11)
        coords = rng.uniform(-3.0, 3.0, size=(100, 3))
        keys = converter.coords_to_key_array(coords)
        for row, (x, y, z) in zip(keys.tolist(), coords.tolist()):
            assert tuple(row) == converter.coord_to_key(x, y, z).as_tuple()

    def test_out_of_range_coordinate_raises(self):
        small = KeyConverter(0.1, tree_depth=4)
        coords = np.array([[0.0, 0.0, 0.0], [0.0, small.max_coordinate + 1.0, 0.0]])
        with pytest.raises(ValueError):
            small.coords_to_key_array(coords)

    def test_key_array_to_coords_is_voxel_center(self, converter):
        keys = np.array([[32768, 32768, 32768], [32769, 32767, 32768]], dtype=np.int64)
        coords = converter.key_array_to_coords(keys)
        for row, key in zip(coords.tolist(), keys.tolist()):
            expected = [converter.key_component_to_coord(component) for component in key]
            assert row == pytest.approx(expected)


class TestShardIndicesArray:
    def test_matches_scalar_shard_index(self):
        generator = AddressGenerator(0.2, 16, 8)
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 0x10000, size=(300, 3), dtype=np.int64)
        for num_shards, prefix_levels in [(2, 1), (4, 3), (12, 12), (7, 16)]:
            vector = generator.shard_indices(keys, num_shards, prefix_levels)
            scalar = [
                generator.shard_index(OcTreeKey(x, y, z), num_shards, prefix_levels)
                for x, y, z in keys.tolist()
            ]
            assert vector.tolist() == scalar


class TestVectorizedEdgeCases:
    def test_empty_cloud(self, converter):
        result = compute_scan_update_arrays(
            converter, np.empty((0, 3)), (0.0, 0.0, 0.0)
        )
        assert result.free_packed.size == 0
        assert result.occupied_packed.size == 0
        assert result.ray_steps == 0

    def test_malformed_points_raise(self, converter):
        with pytest.raises(ValueError, match="shape"):
            compute_scan_update_arrays(converter, np.zeros((4, 2)), (0.0, 0.0, 0.0))

    def test_zero_length_ray(self, converter):
        # Endpoint in the origin voxel: occupied update only, no free voxels.
        _assert_equivalent(converter, [[0.02, 0.02, 0.02]], (0.01, 0.01, 0.01))
        free, occ = _vectorized(converter, [[0.02, 0.02, 0.02]], (0.01, 0.01, 0.01))
        assert free == set()
        assert occ == {converter.coord_to_key(0.02, 0.02, 0.02)}

    def test_exactly_coincident_endpoint(self, converter):
        _assert_equivalent(converter, [[0.05, 0.05, 0.05]], (0.05, 0.05, 0.05))

    def test_axis_aligned_ray_visits_every_voxel(self, converter):
        origin = (0.05, 0.05, 0.05)
        free, occ = _vectorized(converter, [[1.05, 0.05, 0.05]], origin)
        assert len(free) == 9  # voxels strictly between origin and endpoint
        _assert_equivalent(converter, [[1.05, 0.05, 0.05]], origin)
        for endpoint in ([0.05, 1.05, 0.05], [0.05, 0.05, 1.05], [-1.05, 0.05, 0.05]):
            _assert_equivalent(converter, [endpoint], origin)

    def test_single_ray_scan(self, converter):
        _assert_equivalent(converter, [[1.3, -0.7, 0.4]], (0.0, 0.0, 0.0))

    def test_max_range_truncation_marks_no_endpoint(self, converter):
        origin = (0.0, 0.0, 0.0)
        points = [[5.0, 0.0, 0.0]]
        free, occ = _vectorized(converter, points, origin, max_range=1.0)
        assert occ == set()  # truncated beams carve free space only
        assert free  # ... but still carve it
        _assert_equivalent(converter, points, origin, max_range=1.0)

    def test_boundary_clipped_ray_has_no_occupied_endpoint(self):
        # The PR-5 serving fix: a beam whose endpoint lies outside the
        # addressable volume is clipped at the boundary and must register
        # free voxels but NO occupied endpoint -- in the array path too.
        small = KeyConverter(0.1, tree_depth=6)
        origin = (0.0, 0.0, 0.0)
        points = [[small.max_coordinate * 3.0, 0.1, 0.1]]
        free, occ = _vectorized(small, points, origin)
        assert occ == set()
        assert free
        _assert_equivalent(small, points, origin)

    def test_out_of_range_origin_with_in_range_endpoint_raises(self):
        small = KeyConverter(0.1, tree_depth=6)
        bad_origin = (small.max_coordinate * 2.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            compute_scan_update_arrays(small, np.array([[0.1, 0.1, 0.1]]), bad_origin)
        with pytest.raises(ValueError):
            _scalar(small, [[0.1, 0.1, 0.1]], bad_origin)

    def test_out_of_range_origin_with_all_endpoints_out_of_range_is_silent(self):
        small = KeyConverter(0.1, tree_depth=6)
        bad_origin = (small.max_coordinate * 2.0, 0.0, 0.0)
        points = [[small.max_coordinate * 3.0, 0.0, 0.0]]
        result = compute_scan_update_arrays(small, np.array(points), bad_origin)
        assert result.free_packed.size == 0
        assert result.occupied_packed.size == 0
        free_s, occ_s = _scalar(small, points, bad_origin)
        assert free_s == set() and occ_s == set()

    def test_duplicate_endpoints_deduplicate(self, converter):
        points = [[1.0, 0.0, 0.0]] * 5 + [[1.0, 0.02, 0.0]]
        counters = OperationCounters()
        result = compute_scan_update_arrays(
            converter, np.array(points), (0.0, 0.0, 0.0), counters=counters
        )
        assert result.occupied_packed.size == np.unique(result.occupied_packed).size
        # Pre-dedup visits exceed the dedup'd free set for overlapping rays.
        assert counters.ray_steps > result.free_packed.size
        _assert_equivalent(converter, points, (0.0, 0.0, 0.0))

    def test_occupied_beats_free_within_scan(self, converter):
        # A long beam passes through a short beam's endpoint voxel: that
        # voxel must come out occupied, not free.
        points = [[0.55, 0.05, 0.05], [1.55, 0.05, 0.05]]
        free, occ = _vectorized(converter, points, (0.05, 0.05, 0.05))
        short_end = converter.coord_to_key(0.55, 0.05, 0.05)
        assert short_end in occ
        assert short_end not in free
        _assert_equivalent(converter, points, (0.05, 0.05, 0.05))


class TestBatchKernel:
    def test_batch_matches_per_scan_results(self, converter):
        rng = np.random.default_rng(17)
        scans = []
        for _ in range(5):
            n = int(rng.integers(0, 25))
            points = rng.uniform(-4.0, 4.0, size=(n, 3))
            origin = rng.uniform(-0.5, 0.5, size=3)
            scans.append((points, origin, float(rng.choice([-1.0, 2.0]))))
        batch_counters = OperationCounters()
        batch = compute_batch_update_arrays(converter, scans, counters=batch_counters)
        single_counters = OperationCounters()
        singles = [
            compute_scan_update_arrays(converter, *scan, counters=single_counters)
            for scan in scans
        ]
        assert batch_counters.ray_steps == single_counters.ray_steps
        assert len(batch) == len(singles)
        for got, expected in zip(batch, singles):
            assert np.array_equal(got.free_packed, expected.free_packed)
            assert np.array_equal(got.occupied_packed, expected.occupied_packed)
            assert got.ray_steps == expected.ray_steps

    def test_batch_dedup_is_per_scan_not_per_batch(self, converter):
        # Two identical scans in one batch must each keep their updates.
        points = np.array([[1.0, 0.0, 0.0]])
        origin = (0.0, 0.0, 0.0)
        batch = compute_batch_update_arrays(
            converter, [(points, origin, -1.0), (points, origin, -1.0)]
        )
        assert batch[0].free_packed.size == batch[1].free_packed.size > 0
        assert batch[0].occupied_packed.size == batch[1].occupied_packed.size == 1

    def test_batch_with_empty_and_raising_scans(self):
        small = KeyConverter(0.1, tree_depth=6)
        bad_origin = (small.max_coordinate * 2.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            compute_batch_update_arrays(
                small,
                [
                    (np.empty((0, 3)), (0.0, 0.0, 0.0), -1.0),
                    (np.array([[0.1, 0.1, 0.1]]), bad_origin, -1.0),
                ],
            )


points_strategy = st.lists(
    st.tuples(
        st.floats(min_value=-6.0, max_value=6.0),
        st.floats(min_value=-6.0, max_value=6.0),
        st.floats(min_value=-6.0, max_value=6.0),
    ),
    min_size=1,
    max_size=25,
)
origin_strategy = st.tuples(
    st.floats(min_value=-1.0, max_value=1.0),
    st.floats(min_value=-1.0, max_value=1.0),
    st.floats(min_value=-1.0, max_value=1.0),
)


class TestPropertyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        points=points_strategy,
        origin=origin_strategy,
        max_range=st.sampled_from([-1.0, 1.5, 4.0]),
        resolution=st.sampled_from([0.1, 0.25]),
        tree_depth=st.sampled_from([6, 8, 16]),
    )
    def test_vectorized_matches_scalar_on_random_scans(
        self, points, origin, max_range, resolution, tree_depth
    ):
        converter = KeyConverter(resolution, tree_depth=tree_depth)
        _assert_equivalent(converter, points, origin, max_range)
