"""Unit tests for batch scan insertion (ray casting + de-duplicated updates)."""

import pytest

from repro.octomap.octree import OccupancyOcTree
from repro.octomap.pointcloud import PointCloud
from repro.octomap.scan_insertion import (
    clip_segment_to_volume,
    compute_update_keys,
    insert_point_cloud,
)


@pytest.fixture
def tree() -> OccupancyOcTree:
    return OccupancyOcTree(0.1)


class TestComputeUpdateKeys:
    def test_free_and_occupied_are_disjoint(self, tree, ring_cloud):
        free, occupied = compute_update_keys(tree, ring_cloud, (0.0, 0.0, 0.0))
        assert free.isdisjoint(occupied)

    def test_every_endpoint_registers_an_occupied_voxel(self, tree):
        cloud = PointCloud([(1.0, 0.0, 0.0), (0.0, 1.0, 0.0), (0.0, 0.0, 1.0)])
        _, occupied = compute_update_keys(tree, cloud, (0.0, 0.0, 0.0))
        for point in cloud:
            assert tree.coord_to_key(*point) in occupied

    def test_free_voxels_lie_between_origin_and_endpoints(self, tree):
        cloud = PointCloud([(1.05, 0.05, 0.05)])
        free, _ = compute_update_keys(tree, cloud, (0.05, 0.05, 0.05))
        assert len(free) == 9

    def test_duplicate_endpoints_register_once(self, tree):
        cloud = PointCloud([(1.0, 0.0, 0.0)] * 5)
        free, occupied = compute_update_keys(tree, cloud, (0.0, 0.0, 0.0))
        assert len(occupied) == 1

    def test_max_range_truncates_long_beams(self, tree):
        cloud = PointCloud([(10.0, 0.0, 0.0)])
        free, occupied = compute_update_keys(tree, cloud, (0.0, 0.0, 0.0), max_range=2.0)
        assert not occupied, "a truncated beam registers no endpoint"
        assert free, "but the space up to max_range is marked free"
        max_x = max(key.x for key in free)
        boundary = tree.coord_to_key(2.0, 0.0, 0.0).x
        assert max_x <= boundary

    def test_out_of_volume_endpoint_is_clipped(self, tree):
        far = tree.key_converter.max_coordinate * 2.0
        cloud = PointCloud([(far, 0.0, 0.0)])
        free, occupied = compute_update_keys(tree, cloud, (0.0, 0.0, 0.0))
        assert not occupied
        assert free


class TestInsertPointCloud:
    def test_insert_marks_endpoints_occupied(self, tree, ring_cloud):
        insert_point_cloud(tree, ring_cloud, (0.0, 0.0, 0.0))
        occupied = sum(1 for _ in tree.iter_occupied())
        assert occupied > 100

    def test_insert_marks_interior_free(self, tree, ring_cloud):
        insert_point_cloud(tree, ring_cloud, (0.0, 0.0, 0.0))
        assert tree.classify(1.0, 0.0, 0.0) == "free"
        assert tree.classify(0.0, -1.5, 0.0) == "free"

    def test_insert_returns_update_counts(self, tree, ring_cloud):
        free_count, occupied_count = insert_point_cloud(tree, ring_cloud, (0.0, 0.0, 0.0))
        assert free_count > occupied_count > 0
        assert tree.counters.leaf_updates == free_count + occupied_count

    def test_occupied_wins_over_free_within_one_scan(self, tree):
        # A beam passes exactly through another beam's endpoint voxel.
        cloud = PointCloud([(1.05, 0.05, 0.05), (2.05, 0.05, 0.05)])
        insert_point_cloud(tree, cloud, (0.05, 0.05, 0.05))
        assert tree.classify(1.05, 0.05, 0.05) == "occupied"

    def test_lazy_insertion_produces_same_map(self, tree, ring_cloud):
        lazy_tree = OccupancyOcTree(0.1)
        insert_point_cloud(tree, ring_cloud, (0.0, 0.0, 0.0))
        insert_point_cloud(lazy_tree, ring_cloud, (0.0, 0.0, 0.0), lazy_prune=True)
        tree.prune()
        assert tree.occupancy_grid() == pytest.approx(lazy_tree.occupancy_grid())

    def test_repeated_insertion_reinforces_occupancy(self, tree, ring_cloud):
        insert_point_cloud(tree, ring_cloud, (0.0, 0.0, 0.0))
        first = tree.search(3.0, 0.0, 0.0)
        first_value = first.log_odds if first else None
        insert_point_cloud(tree, ring_cloud, (0.0, 0.0, 0.0))
        second = tree.search(3.0, 0.0, 0.0)
        assert first_value is not None and second is not None
        assert second.log_odds >= first_value


class TestClipSegment:
    def test_inside_segment_is_unchanged(self, tree):
        converter = tree.key_converter
        end = clip_segment_to_volume(converter, (0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        assert end == pytest.approx((1.0, 1.0, 1.0))

    def test_far_endpoint_is_pulled_inside(self, tree):
        converter = tree.key_converter
        limit = converter.max_coordinate
        end = clip_segment_to_volume(converter, (0.0, 0.0, 0.0), (10.0 * limit, 0.0, 0.0))
        assert end is not None
        assert converter.is_coordinate_in_range(*end)

    def test_origin_outside_returns_none(self, tree):
        converter = tree.key_converter
        limit = converter.max_coordinate
        assert clip_segment_to_volume(converter, (2.0 * limit, 0.0, 0.0), (0.0, 0.0, 0.0)) is None
