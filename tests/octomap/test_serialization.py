"""Unit tests for the binary tree serialization."""

import pytest

from repro.octomap.octree import OccupancyOcTree
from repro.octomap.serialization import (
    deserialize_tree,
    read_tree,
    serialize_tree,
    write_tree,
)


class TestRoundTrip:
    def test_empty_tree_roundtrip(self):
        tree = OccupancyOcTree(0.25)
        clone = deserialize_tree(serialize_tree(tree))
        assert clone.is_empty()
        assert clone.resolution == pytest.approx(0.25)

    def test_single_voxel_roundtrip(self):
        tree = OccupancyOcTree(0.1)
        tree.update_node(0.55, 0.55, 0.55, occupied=True)
        clone = deserialize_tree(serialize_tree(tree))
        assert clone.size() == tree.size()
        assert clone.classify(0.55, 0.55, 0.55) == "occupied"

    def test_full_map_roundtrip_preserves_structure(self, small_tree):
        clone = deserialize_tree(serialize_tree(small_tree))
        assert clone.size() == small_tree.size()
        assert clone.num_leaf_nodes() == small_tree.num_leaf_nodes()

    def test_roundtrip_preserves_values_within_float32(self, small_tree):
        clone = deserialize_tree(serialize_tree(small_tree))
        original = small_tree.occupancy_grid()
        restored = clone.occupancy_grid()
        assert set(original) == set(restored)
        for key, value in original.items():
            assert restored[key] == pytest.approx(value, abs=1e-5)

    def test_roundtrip_preserves_metadata(self):
        tree = OccupancyOcTree(0.05, tree_depth=12)
        tree.update_node(0.1, 0.1, 0.1, occupied=True)
        clone = deserialize_tree(serialize_tree(tree))
        assert clone.resolution == pytest.approx(0.05)
        assert clone.tree_depth == 12

    def test_file_roundtrip(self, small_tree, tmp_path):
        path = tmp_path / "map.bt"
        written = write_tree(small_tree, path)
        assert path.stat().st_size == written
        clone = read_tree(path)
        assert clone.size() == small_tree.size()


class TestErrorHandling:
    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            deserialize_tree(b"not a tree at all\n")

    def test_truncated_stream_rejected(self, small_tree):
        data = serialize_tree(small_tree)
        with pytest.raises(ValueError):
            deserialize_tree(data[: len(data) // 2])

    def test_incomplete_header_rejected(self):
        with pytest.raises(ValueError):
            deserialize_tree(b"# repro-octree v1\nres 0.1\ndata\n")

    def test_unknown_header_field_rejected(self):
        data = b"# repro-octree v1\nres 0.1\ndepth 16\nbogus 1\nsize 0\ndata\n"
        with pytest.raises(ValueError, match="bogus"):
            deserialize_tree(data)

    def test_size_mismatch_rejected(self, small_tree):
        data = serialize_tree(small_tree)
        # Corrupt the declared size in the header.
        header, _, body = data.partition(b"data\n")
        corrupted = header.replace(
            f"size {small_tree.size()}".encode(), b"size 1"
        ) + b"data\n" + body
        with pytest.raises(ValueError, match="mismatch"):
            deserialize_tree(corrupted)


class TestTornReads:
    """Byte-precise torn-read coverage: a snapshot cut off at *any* point --
    inside the header, on a node-record boundary, or mid-record -- must be
    rejected, never silently deserialized into a shorter tree.  This is what
    the failover path leans on when it rehydrates shard snapshots."""

    def test_every_header_truncation_rejected(self, small_tree):
        data = serialize_tree(small_tree)
        header_end = data.index(b"data\n") + len(b"data\n")
        for cut in range(header_end):
            with pytest.raises(ValueError):
                deserialize_tree(data[:cut])

    def test_mid_record_truncation_rejected(self, small_tree):
        data = serialize_tree(small_tree)
        header_end = data.index(b"data\n") + len(b"data\n")
        record = 5  # struct "<fB": float32 log-odds + child bitmap
        assert (len(data) - header_end) % record == 0
        # Cut inside the first, a middle, and the last node record.
        for offset in (1, record + 2, len(data) - header_end - 1):
            with pytest.raises(ValueError, match="truncated node record"):
                deserialize_tree(data[: header_end + offset])

    def test_record_boundary_truncation_rejected(self, small_tree):
        """A cut on a record boundary still fails: either the pre-order
        recursion runs out of declared children (truncated record) or the
        header-declared node count catches the short stream."""
        data = serialize_tree(small_tree)
        header_end = data.index(b"data\n") + len(b"data\n")
        assert small_tree.size() >= 2
        with pytest.raises(ValueError, match="truncated node record|mismatch"):
            deserialize_tree(data[: header_end + 5 * (small_tree.size() - 1)])

    def test_trailing_garbage_rejected(self, small_tree):
        data = serialize_tree(small_tree)
        with pytest.raises(ValueError, match="trailing bytes"):
            deserialize_tree(data + b"\x00" * 5)

    def test_corrupted_child_bitmap_still_parses_as_values(self, small_tree):
        """Flipping payload bytes (not lengths) cannot be detected by the
        framing -- but it must never crash the parser either; the node count
        check is the only structural guarantee."""
        data = bytearray(serialize_tree(small_tree))
        header_end = data.index(b"data\n") + len(b"data\n")
        data[header_end + 4] ^= 0xFF  # first node's child bitmap
        try:
            deserialize_tree(bytes(data))
        except ValueError:
            pass  # structurally detected -- also acceptable
