"""Unit tests for the binary tree serialization."""

import pytest

from repro.octomap.octree import OccupancyOcTree
from repro.octomap.serialization import (
    deserialize_tree,
    read_tree,
    serialize_tree,
    write_tree,
)


class TestRoundTrip:
    def test_empty_tree_roundtrip(self):
        tree = OccupancyOcTree(0.25)
        clone = deserialize_tree(serialize_tree(tree))
        assert clone.is_empty()
        assert clone.resolution == pytest.approx(0.25)

    def test_single_voxel_roundtrip(self):
        tree = OccupancyOcTree(0.1)
        tree.update_node(0.55, 0.55, 0.55, occupied=True)
        clone = deserialize_tree(serialize_tree(tree))
        assert clone.size() == tree.size()
        assert clone.classify(0.55, 0.55, 0.55) == "occupied"

    def test_full_map_roundtrip_preserves_structure(self, small_tree):
        clone = deserialize_tree(serialize_tree(small_tree))
        assert clone.size() == small_tree.size()
        assert clone.num_leaf_nodes() == small_tree.num_leaf_nodes()

    def test_roundtrip_preserves_values_within_float32(self, small_tree):
        clone = deserialize_tree(serialize_tree(small_tree))
        original = small_tree.occupancy_grid()
        restored = clone.occupancy_grid()
        assert set(original) == set(restored)
        for key, value in original.items():
            assert restored[key] == pytest.approx(value, abs=1e-5)

    def test_roundtrip_preserves_metadata(self):
        tree = OccupancyOcTree(0.05, tree_depth=12)
        tree.update_node(0.1, 0.1, 0.1, occupied=True)
        clone = deserialize_tree(serialize_tree(tree))
        assert clone.resolution == pytest.approx(0.05)
        assert clone.tree_depth == 12

    def test_file_roundtrip(self, small_tree, tmp_path):
        path = tmp_path / "map.bt"
        written = write_tree(small_tree, path)
        assert path.stat().st_size == written
        clone = read_tree(path)
        assert clone.size() == small_tree.size()


class TestErrorHandling:
    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            deserialize_tree(b"not a tree at all\n")

    def test_truncated_stream_rejected(self, small_tree):
        data = serialize_tree(small_tree)
        with pytest.raises(ValueError):
            deserialize_tree(data[: len(data) // 2])

    def test_incomplete_header_rejected(self):
        with pytest.raises(ValueError):
            deserialize_tree(b"# repro-octree v1\nres 0.1\ndata\n")

    def test_unknown_header_field_rejected(self):
        data = b"# repro-octree v1\nres 0.1\ndepth 16\nbogus 1\nsize 0\ndata\n"
        with pytest.raises(ValueError, match="bogus"):
            deserialize_tree(data)

    def test_size_mismatch_rejected(self, small_tree):
        data = serialize_tree(small_tree)
        # Corrupt the declared size in the header.
        header, _, body = data.partition(b"data\n")
        corrupted = header.replace(
            f"size {small_tree.size()}".encode(), b"size 1"
        ) + b"data\n" + body
        with pytest.raises(ValueError, match="mismatch"):
            deserialize_tree(corrupted)
