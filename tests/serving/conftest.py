"""Shared fixtures for the serving-layer tests: tiny scan workloads."""

from __future__ import annotations

import math
from typing import List

import numpy as np
import pytest

from repro.octomap import PointCloud, Pose6D, ScanNode
from repro.serving import ScanRequest


def ring_scan(origin_x: float, scan_id: int, radius: float = 2.5, beams: int = 90) -> ScanNode:
    """One small ring scan observed from ``(origin_x, 0, 0.2)``."""
    points = [
        (
            radius * math.cos(azimuth) + 0.2 * math.sin(3.0 * azimuth),
            radius * math.sin(azimuth),
            0.3 * math.sin(2.0 * azimuth),
        )
        for azimuth in np.linspace(-math.pi, math.pi, beams, endpoint=False)
    ]
    return ScanNode(PointCloud(points), Pose6D((origin_x, 0.0, 0.2)), scan_id=scan_id)


@pytest.fixture
def small_scans() -> List[ScanNode]:
    """Three overlapping ring scans (re-updates the same voxels repeatedly)."""
    return [ring_scan(origin_x, scan_id) for scan_id, origin_x in enumerate((-0.6, 0.0, 0.6))]


@pytest.fixture
def small_requests(small_scans) -> List[ScanRequest]:
    """The ring scans wrapped as requests for session ``"map"``."""
    return [
        ScanRequest.from_scan_node("map", scan).with_request_id(index)
        for index, scan in enumerate(small_scans)
    ]


@pytest.fixture
def chaos():
    """A fresh fault-injection harness for socket-backend chaos tests.

    Arm faults with :meth:`ChaosHarness.arm` and build backends with
    :meth:`ChaosHarness.make_backend`; see ``tests/serving/faultinject.py``.
    Any workers spawned through the harness are reaped on teardown.
    """
    from faultinject import ChaosHarness

    harness = ChaosHarness()
    yield harness
    for handle in harness.handles.values():
        handle.stop()
