"""Fault-injection harness for the socket shard backend.

The socket backend exposes a ``transport_wrapper`` seam: every connection it
opens (including post-recovery reconnects) passes through the wrapper before
use.  This module plugs a :class:`ChaosTransport` into that seam -- a
transparent proxy around the real framed transport that consults an armed
fault queue on every send/receive and can, at exactly the chosen protocol
step:

* kill the shard's worker *before* an apply reaches it (the slice is lost in
  flight and must be re-sent to the replacement);
* kill the worker *after* it applied but before its ack arrives (the worst
  case: the dead worker's half-advanced state must be discarded and rebuilt
  from snapshot + replay, or the map silently double-applies);
* drop or delay a single reply;
* sever the connection mid-message (torn frame);
* stall a heartbeat past its deadline.

Faults are armed explicitly (:meth:`ChaosHarness.arm`) or generated as a
deterministic seeded plan (:func:`random_fault_plan`), so every chaos test
replays bit-for-bit.  Use the ``chaos`` pytest fixture from ``conftest.py``::

    def test_survives_ack_loss(chaos):
        backend = chaos.make_backend(CONFIG, num_shards=2)
        chaos.arm(Fault(KILL_WORKER, phase="recv", verb="apply", shard_id=1))
        backend.apply_shard_batches(batches)   # recovers under the hood
        assert backend.failovers == 1
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.serving.remote import LocalWorkerHandle, SocketBackend, Transport, TransportError

__all__ = [
    "KILL_WORKER",
    "DROP_REPLY",
    "DELAY_REPLY",
    "SEVER_CONNECTION",
    "STALL_HEARTBEAT",
    "Fault",
    "ChaosTransport",
    "ChaosHarness",
    "random_fault_plan",
]

#: kill the target worker server at the fault point (state gone for good).
KILL_WORKER = "kill_worker"
#: swallow one reply: the worker answered, the client never hears it.
DROP_REPLY = "drop_reply"
#: deliver one reply late by ``delay_s`` (exercises slow-not-dead workers).
DELAY_REPLY = "delay_reply"
#: tear the connection mid-message (the torn-frame TransportError path).
SEVER_CONNECTION = "sever_connection"
#: make one heartbeat miss its deadline without killing anything.
STALL_HEARTBEAT = "stall_heartbeat"

_ACTIONS = (KILL_WORKER, DROP_REPLY, DELAY_REPLY, SEVER_CONNECTION, STALL_HEARTBEAT)


@dataclass
class Fault:
    """One armed fault: what to do, and at which protocol step to do it.

    Attributes:
        action: one of the module's action constants.
        phase: ``"send"`` (just before the request leaves) or ``"recv"``
            (just before the reply is read).  A ``KILL_WORKER`` at ``send``
            kills before the worker can apply; at ``recv`` it kills after
            the apply, losing only the ack.
        verb: only trigger on this RPC verb (``"apply"``, ``"ping"``, ...);
            ``None`` matches any verb.
        shard_id: only trigger on this shard's connection; ``None`` matches
            any shard.
        delay_s: sleep length for ``DELAY_REPLY`` / ``STALL_HEARTBEAT``.
    """

    action: str
    phase: str = "recv"
    verb: Optional[str] = None
    shard_id: Optional[int] = None
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.phase not in ("send", "recv"):
            raise ValueError(f"unknown fault phase {self.phase!r}")

    def matches(self, verb: Optional[str], shard_id: int, phase: str) -> bool:
        if self.phase != phase:
            return False
        if self.verb is not None and self.verb != verb:
            return False
        if self.shard_id is not None and self.shard_id != shard_id:
            return False
        return True


class ChaosTransport:
    """Transparent proxy over a framed transport that injects armed faults."""

    def __init__(
        self, inner: Transport, shard_id: int, endpoint: str, harness: "ChaosHarness"
    ) -> None:
        self.inner = inner
        self.shard_id = shard_id
        self.endpoint = endpoint
        self.harness = harness
        #: verb of the last request sent, so a reply knows what it answers.
        self._last_verb: Optional[str] = None

    # -- faulted paths --------------------------------------------------
    def send(self, message: object) -> None:
        verb = message[0] if isinstance(message, tuple) and message else None
        self._last_verb = verb if isinstance(verb, str) else None
        fault = self.harness._take(self._last_verb, self.shard_id, "send")
        if fault is not None:
            if fault.action == KILL_WORKER:
                # Worker dies before the request can be applied; the send
                # itself may still land in a dead socket buffer.
                self.harness.kill_endpoint(self.endpoint)
            elif fault.action == SEVER_CONNECTION:
                self.inner.close()
                raise TransportError("chaos: connection severed before send")
        self.inner.send(message)

    def recv(self) -> object:
        fault = self.harness._take(self._last_verb, self.shard_id, "recv")
        if fault is None:
            return self.inner.recv()
        if fault.action == SEVER_CONNECTION:
            self.inner.close()
            raise TransportError("chaos: connection severed mid-message")
        if fault.action == STALL_HEARTBEAT:
            time.sleep(fault.delay_s)
            raise TransportError(
                f"chaos: reply stalled {fault.delay_s}s past the deadline"
            )
        if fault.action == DELAY_REPLY:
            time.sleep(fault.delay_s)
            return self.inner.recv()
        # KILL_WORKER / DROP_REPLY at recv: the worker did the work -- let
        # the real reply arrive, then lose it (and, for kill, the worker).
        reply = self.inner.recv()
        if fault.action == KILL_WORKER:
            self.harness.kill_endpoint(self.endpoint)
            raise TransportError("chaos: worker killed after applying, ack lost")
        del reply
        raise TransportError("chaos: reply dropped")

    # -- transparent delegation -----------------------------------------
    @property
    def closed(self) -> bool:
        return self.inner.closed

    def peername(self) -> Tuple[str, int]:
        return self.inner.peername()

    def settimeout(self, timeout_s: Optional[float]) -> None:
        self.inner.settimeout(timeout_s)

    def close(self) -> None:
        self.inner.close()


class ChaosHarness:
    """Owns the armed fault queue and the kill switches of spawned workers."""

    def __init__(self) -> None:
        self.handles: Dict[str, LocalWorkerHandle] = {}
        self.faults: Deque[Fault] = deque()
        #: every fault actually fired, in order: (verb, shard_id, fault).
        self.fired: List[Tuple[Optional[str], int, Fault]] = []

    # -- construction ----------------------------------------------------
    def wrap(self, transport: Transport, shard_id: int, endpoint) -> ChaosTransport:
        """The ``transport_wrapper`` the socket backend calls on every connect."""
        return ChaosTransport(transport, shard_id, str(endpoint), self)

    def make_backend(self, config, num_shards: int, **kwargs) -> SocketBackend:
        """A locally spawned socket backend with chaos on every connection."""
        backend = SocketBackend(
            config, num_shards, transport_wrapper=self.wrap, **kwargs
        )
        self.adopt(backend)
        return backend

    def adopt(self, backend: SocketBackend) -> None:
        """Register a backend's spawned workers for endpoint-addressed kills."""
        for handle in backend.owned_workers:
            self.handles[handle.endpoint] = handle

    # -- fault control ----------------------------------------------------
    def arm(self, *faults: Fault) -> None:
        """Queue faults; each fires once, at its first matching operation."""
        self.faults.extend(faults)

    def kill_endpoint(self, endpoint: str) -> None:
        """Abruptly kill the worker serving an endpoint (no drain, state lost)."""
        handle = self.handles.get(endpoint)
        if handle is not None:
            handle.kill()

    def _take(self, verb: Optional[str], shard_id: int, phase: str) -> Optional[Fault]:
        """Pop and return the head fault iff this operation matches it.

        Only the queue head is considered, so a plan's faults fire strictly
        in the order they were armed -- that is what makes seeded plans
        deterministic.
        """
        if not self.faults or not self.faults[0].matches(verb, shard_id, phase):
            return None
        fault = self.faults.popleft()
        self.fired.append((verb, shard_id, fault))
        return fault


def random_fault_plan(
    seed: int,
    num_shards: int,
    num_faults: int = 3,
    actions: Tuple[str, ...] = (KILL_WORKER, DROP_REPLY, SEVER_CONNECTION),
) -> List[Fault]:
    """A deterministic, seed-reproducible plan of apply-targeted faults.

    Every fault targets an ``apply`` round-trip on a random shard at a random
    phase, so driving any workload with the plan armed exercises recovery at
    arbitrary protocol steps while staying replayable from the seed alone.
    """
    rng = random.Random(seed)
    plan = []
    for _ in range(num_faults):
        plan.append(
            Fault(
                action=rng.choice(actions),
                phase=rng.choice(("send", "recv")),
                verb="apply",
                shard_id=rng.randrange(num_shards),
            )
        )
    return plan
