"""Asyncio admission front end: equivalence, backpressure, clean shutdown.

The suite runs each coroutine test through ``asyncio.run`` on a fresh event
loop, so it needs no asyncio pytest plugin (pytest-asyncio is in the test
extra for CI convenience, not a requirement).  Unawaited-coroutine warnings
are escalated to errors for every test in this module -- a dropped coroutine
in the serving layer is a bug, not noise -- and CI additionally runs the
module with ``-W error::RuntimeWarning``.
"""

from __future__ import annotations

import asyncio
import functools
import multiprocessing

import numpy as np
import pytest

from repro.core.verification import compare_trees
from repro.octomap import OccupancyOcTree, PointCloud
from repro.serving import (
    AdmissionQueueFull,
    AsyncMapService,
    MapSessionManager,
    ScanRequest,
    SessionConfig,
)

pytestmark = pytest.mark.filterwarnings(
    "error:coroutine .* was never awaited:RuntimeWarning"
)


def async_test(coro):
    """Run a coroutine test function on a fresh event loop."""

    @functools.wraps(coro)
    def wrapper(*args, **kwargs):
        return asyncio.run(coro(*args, **kwargs))

    return wrapper


def _requests(count: int, session_id: str = "map", seed: int = 7):
    rng = np.random.default_rng(seed)
    return [
        ScanRequest(
            session_id=session_id,
            cloud=PointCloud(rng.uniform(-3.0, 3.0, size=(20, 3))),
            origin=(0.0, 0.1 * index, 0.2),
            max_range=5.0,
        )
        for index in range(count)
    ]


def _reference_tree(session, requests):
    """Sequential software insertion with the session's quantised parameters."""
    accel_config = session.config.accelerator
    tree = OccupancyOcTree(
        accel_config.resolution_m,
        tree_depth=accel_config.tree_depth,
        params=accel_config.quantized_params().as_float_params(),
    )
    for request in requests:
        tree.insert_point_cloud(request.cloud, request.origin, max_range=request.max_range)
    tree.prune()
    return tree


def _assert_session_matches_dispatch_order(service, session_id, submitted):
    """The session's map equals sequential insertion in dispatch order."""
    session = service.manager.get_session(session_id)
    dispatched = [
        rid for report in session.pipeline.reports for rid in report.request_ids
    ]
    by_id = {request.request_id: request for request in submitted}
    assert sorted(dispatched) == sorted(by_id), "every submit dispatched exactly once"
    reference = _reference_tree(session, [by_id[rid] for rid in dispatched])
    tolerance = session.config.accelerator.fixed_point.scale / 2.0
    report = compare_trees(reference, session.export_octree(), tolerance)
    assert report.equivalent, report.summary()
    assert report.max_abs_error <= tolerance


# ---------------------------------------------------------------------------
# Basic flow
# ---------------------------------------------------------------------------
@async_test
async def test_submit_is_admission_only_and_flush_builds_the_map():
    async with AsyncMapService(
        default_config=SessionConfig(num_shards=2, batch_size=2)
    ) as service:
        requests = _requests(4)
        receipts = [await service.submit(request) for request in requests]
        assert [receipt.request_id for receipt in receipts] == sorted(
            receipt.request_id for receipt in receipts
        )
        reports = await service.flush("map")
        assert reports, "flush returned the drain's batch reports"
        assert service.pending_requests() == 0
        stats = service.manager.get_session("map").stats
        assert stats.async_submits == 4
        assert stats.scans_ingested == 4
        response = await service.query("map", 1.0, 0.1, 0.2)
        assert response.status in ("occupied", "free", "unknown")


@async_test
async def test_query_batch_bbox_and_raycast_coroutines_work():
    async with AsyncMapService(
        default_config=SessionConfig(num_shards=2, batch_size=4)
    ) as service:
        for request in _requests(3):
            await service.submit(request)
        await service.flush("map")
        batch = await service.query_batch("map", [(0.0, 0.0, 0.2), (1.0, 0.0, 0.2)])
        assert len(batch) == 2
        box = await service.query_bbox("map", (-0.4, -0.4, 0.0), (0.4, 0.4, 0.4))
        assert box.voxels_scanned > 0
        ray = await service.raycast("map", (0.0, 0.0, 0.2), (1.0, 0.0, 0.0), 4.0)
        assert ray.voxels_traversed > 0


# ---------------------------------------------------------------------------
# The acceptance property: async multi-client ingestion == sequential insertion
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["inline", "thread", "process"])
@async_test
async def test_multi_client_ingestion_equals_sequential_insertion(backend):
    """Concurrent client coroutines submitting a fixed request sequence yield
    a map equivalent to sequential insertion (in the dispatch order the batch
    reports recorded) -- on every execution backend."""
    config = SessionConfig(num_shards=2, batch_size=3, backend=backend)
    async with AsyncMapService(default_config=config) as service:
        # Eager creation: with the process backend the shard workers must
        # fork before the executor threads exist.
        service.get_or_create_session("map")
        requests = _requests(9)
        submitted = []

        async def run_client(chunk):
            for request in chunk:
                receipt = await service.submit(request)
                submitted.append(request.with_request_id(receipt.request_id))
                await asyncio.sleep(0)  # interleave with the other clients

        await asyncio.gather(
            run_client(requests[0:3]), run_client(requests[3:6]), run_client(requests[6:9])
        )
        await service.flush_all()
        _assert_session_matches_dispatch_order(service, "map", submitted)


@async_test
async def test_pipelined_async_session_stays_equivalent():
    """The flusher leaves a pipelined session's batch in flight between
    wake-ups (keeping the overlap window open); flush settles the tail and
    the map still equals sequential insertion in dispatch order."""
    config = SessionConfig(num_shards=2, batch_size=2, pipelined=True)
    async with AsyncMapService(default_config=config) as service:
        service.get_or_create_session("map")
        submitted = []

        async def run_client(chunk):
            for request in chunk:
                receipt = await service.submit(request)
                submitted.append(request.with_request_id(receipt.request_id))
                await asyncio.sleep(0)

        requests = _requests(8)
        await asyncio.gather(run_client(requests[:4]), run_client(requests[4:]))
        await service.flush("map")
        session = service.manager.get_session("map")
        assert not session.pipeline.has_inflight, "flush drained the tail"
        assert session.stats.pipelined_batches > 0
        _assert_session_matches_dispatch_order(service, "map", submitted)


@async_test
async def test_close_settles_a_pipelined_tail():
    config = SessionConfig(num_shards=1, batch_size=2, pipelined=True)
    service = AsyncMapService(default_config=config)
    service.get_or_create_session("map")
    for request in _requests(4):
        await service.submit(request)
    await service.close()  # drain must apply *and account* the in-flight tail
    assert service.manager.get_session("map").stats.scans_ingested == 4


@async_test
async def test_concurrent_sessions_stay_isolated():
    config = SessionConfig(num_shards=2, batch_size=2)
    async with AsyncMapService(default_config=config) as service:
        submitted = {"east": [], "west": []}

        async def run_client(session_id, seed):
            for request in _requests(4, session_id=session_id, seed=seed):
                receipt = await service.submit(request)
                submitted[session_id].append(request.with_request_id(receipt.request_id))
                await asyncio.sleep(0)

        await asyncio.gather(run_client("east", 11), run_client("west", 22))
        await service.flush_all()
        for session_id in ("east", "west"):
            _assert_session_matches_dispatch_order(service, session_id, submitted[session_id])


# ---------------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------------
@async_test
async def test_full_admission_queue_backpressures_and_rejects():
    config = SessionConfig(num_shards=1, batch_size=2, admission_queue_limit=2)
    async with AsyncMapService(default_config=config) as service:
        service.get_or_create_session("map")
        entry = service._entries["map"]
        stats = service.manager.get_session("map").stats
        requests = _requests(6)
        # Holding the session lock stalls the flusher after it pops the
        # first request, making queue occupancy fully deterministic.
        async with entry.lock:
            await service.submit(requests[0])
            for _ in range(200):
                if entry.queue.empty():
                    break
                await asyncio.sleep(0.001)
            assert entry.queue.empty(), "flusher popped the first request"
            await service.submit(requests[1])
            await service.submit(requests[2])  # queue now at its limit of 2
            assert service.admission_queue_depth("map") == 2

            with pytest.raises(AdmissionQueueFull):
                await service.submit(requests[3], wait=False)
            assert stats.queue_rejects == 1

            waiter = asyncio.ensure_future(service.submit(requests[4]))
            await asyncio.sleep(0.02)
            assert not waiter.done(), "wait=True submit backpressured, not rejected"
        receipt = await waiter  # lock released -> flusher drains -> slot frees
        assert receipt.request_id >= 0
        await service.flush("map")
        assert stats.admission_waits == 1
        assert stats.admission_wait_seconds > 0.0
        assert stats.admission_queue_high_water >= 2
        assert stats.scans_ingested == 4  # the reject really was dropped


@async_test
async def test_slow_session_does_not_stall_other_sessions_admission():
    """The point of the async front door: one stalled session's ingestion
    cannot block admission -- or ingestion -- for anyone else."""
    config = SessionConfig(num_shards=1, batch_size=2, admission_queue_limit=4)
    async with AsyncMapService(default_config=config) as service:
        service.get_or_create_session("slow")
        service.get_or_create_session("fast")
        slow_entry = service._entries["slow"]
        async with slow_entry.lock:  # the "slow" session's ingestion hangs
            for request in _requests(3, session_id="slow"):
                await service.submit(request)
            fast_requests = _requests(3, session_id="fast", seed=5)
            for request in fast_requests:
                await service.submit(request)
            reports = await service.flush("fast")  # completes despite "slow"
            assert sum(report.scans for report in reports) == 3
        await service.flush("slow")
        assert service.manager.get_session("slow").stats.scans_ingested == 3


# ---------------------------------------------------------------------------
# Shutdown / cancellation hygiene
# ---------------------------------------------------------------------------
@async_test
async def test_graceful_close_leaves_no_orphan_tasks_or_processes():
    before = set(multiprocessing.active_children())
    service = AsyncMapService(
        default_config=SessionConfig(num_shards=2, batch_size=2, backend="process")
    )
    service.get_or_create_session("map")
    for request in _requests(4):
        await service.submit(request)
    await service.close()  # drains, then releases the worker processes
    assert service.manager.get_session("map").stats.scans_ingested == 4
    assert set(multiprocessing.active_children()) - before == set()
    assert asyncio.all_tasks() == {asyncio.current_task()}
    await service.close()  # idempotent


@async_test
async def test_cancelling_clients_and_abandoning_the_queue_is_clean():
    before = set(multiprocessing.active_children())
    service = AsyncMapService(
        default_config=SessionConfig(
            num_shards=1, batch_size=1, backend="process", admission_queue_limit=2
        )
    )
    service.get_or_create_session("map")

    async def chatty_client():
        for request in _requests(50):
            await service.submit(request)  # will backpressure and be cancelled

    clients = [asyncio.ensure_future(chatty_client()) for _ in range(2)]
    await asyncio.sleep(0.05)
    for client in clients:
        client.cancel()
    results = await asyncio.gather(*clients, return_exceptions=True)
    assert all(isinstance(result, asyncio.CancelledError) for result in results)
    await service.close(drain=False)  # abandon whatever is still queued
    assert set(multiprocessing.active_children()) - before == set()
    assert asyncio.all_tasks() == {asyncio.current_task()}


@async_test
async def test_close_while_submitter_parked_on_full_queue_raises():
    """Regression: close() while a submit is backpressure-parked must fail
    that submit (its request can no longer reach the map) rather than hang
    it forever or hand back a success receipt."""
    config = SessionConfig(num_shards=1, batch_size=1, admission_queue_limit=1)
    service = AsyncMapService(default_config=config)
    service.get_or_create_session("map")
    entry = service._entries["map"]
    requests = _requests(3)
    async with entry.lock:  # stall the flusher so the queue stays full
        await service.submit(requests[0])
        for _ in range(200):
            if entry.queue.empty():
                break
            await asyncio.sleep(0.001)
        await service.submit(requests[1])  # queue full (limit 1)
        waiter = asyncio.ensure_future(service.submit(requests[2]))
        await asyncio.sleep(0.01)
        assert not waiter.done()
        closer = asyncio.ensure_future(service.close())
        await asyncio.sleep(0.01)
    await closer
    with pytest.raises(RuntimeError, match="closed"):
        await asyncio.wait_for(waiter, timeout=5.0)
    assert asyncio.all_tasks() == {asyncio.current_task()}


@async_test
async def test_submit_after_close_raises():
    service = AsyncMapService(default_config=SessionConfig(num_shards=1))
    service.get_or_create_session("map")
    await service.close()
    with pytest.raises(RuntimeError, match="closed"):
        await service.submit(_requests(1)[0])


@async_test
async def test_backpressured_submitter_survives_a_concurrent_fail_stop():
    """Regression: a submitter parked on a full queue while the flusher
    fail-stops must neither deadlock a later flush (orphaned queue item)
    nor receive a success receipt for a request that was discarded."""
    config = SessionConfig(num_shards=1, batch_size=1, admission_queue_limit=1)
    async with AsyncMapService(default_config=config) as service:
        session = service.get_or_create_session("map")
        entry = service._entries["map"]
        requests = _requests(4)
        async with entry.lock:  # stall the flusher mid-cycle
            await service.submit(requests[0])
            for _ in range(200):
                if entry.queue.empty():
                    break
                await asyncio.sleep(0.001)
            await service.submit(requests[1])  # queue full again (limit 1)
            waiter = asyncio.ensure_future(service.submit(requests[2]))
            await asyncio.sleep(0.01)
            assert not waiter.done()
            session.backend.close()  # the resumed flusher will now fail
        # Lock released: the flusher errors, fail-stops, and drains; the
        # parked submitter must surface the failure instead of succeeding.
        with pytest.raises(RuntimeError, match="fail-stopped"):
            await waiter
        with pytest.raises(RuntimeError, match="fail-stopped"):
            await asyncio.wait_for(service.flush("map"), timeout=5.0)


@async_test
async def test_flusher_failure_fail_stops_the_session():
    async with AsyncMapService(
        default_config=SessionConfig(num_shards=1, batch_size=1)
    ) as service:
        session = service.get_or_create_session("map")
        session.backend.close()  # simulate a lost execution backend
        await service.submit(_requests(1)[0])
        with pytest.raises(RuntimeError, match="fail-stopped"):
            await service.flush("map")
        with pytest.raises(RuntimeError, match="fail-stopped"):
            await service.submit(_requests(1)[0])


# ---------------------------------------------------------------------------
# Configuration plumbing
# ---------------------------------------------------------------------------
@async_test
async def test_conflicting_session_config_is_rejected():
    async with AsyncMapService(
        default_config=SessionConfig(num_shards=2)
    ) as service:
        service.get_or_create_session("map", SessionConfig(num_shards=2))
        with pytest.raises(ValueError, match="different"):
            service.get_or_create_session("map", SessionConfig(num_shards=4))


@async_test
async def test_queue_limit_override_and_validation():
    with pytest.raises(ValueError, match="queue_limit"):
        AsyncMapService(queue_limit=0)
    async with AsyncMapService(
        default_config=SessionConfig(num_shards=1, admission_queue_limit=64),
        queue_limit=3,
    ) as service:
        service.get_or_create_session("map")
        assert service._entries["map"].queue.maxsize == 3


def test_session_config_validates_admission_queue_limit():
    with pytest.raises(ValueError, match="admission_queue_limit"):
        SessionConfig(admission_queue_limit=0)


@async_test
async def test_wrapping_an_existing_manager_reuses_its_sessions():
    manager = MapSessionManager(SessionConfig(num_shards=1, batch_size=2))
    manager.get_or_create_session("map")
    async with AsyncMapService(manager) as service:
        for request in _requests(2):
            await service.submit(request, auto_create=False)
        await service.flush("map")
        assert manager.get_session("map").stats.scans_ingested == 2
    assert manager.get_session("map").closed


# ---------------------------------------------------------------------------
# Streaming bounding-box sweeps
# ---------------------------------------------------------------------------
@async_test
async def test_stream_bbox_matches_the_aggregate_sweep():
    async with AsyncMapService(
        default_config=SessionConfig(num_shards=2, batch_size=4)
    ) as service:
        for request in _requests(3):
            await service.submit(request)
        await service.flush("map")
        minimum, maximum = (-1.0, -1.0, 0.0), (1.0, 1.0, 0.4)
        summary = await service.query_bbox("map", minimum, maximum)
        chunks = [
            chunk
            async for chunk in service.stream_bbox(
                "map", minimum, maximum, chunk_voxels=9
            )
        ]
        assert all(len(chunk.voxels) <= 9 for chunk in chunks)
        assert sum(len(chunk.voxels) for chunk in chunks) == summary.voxels_scanned
        assert sum(chunk.occupied for chunk in chunks) == summary.occupied
        assert sum(chunk.free for chunk in chunks) == summary.free
        assert sum(chunk.unknown for chunk in chunks) == summary.unknown


@async_test
async def test_stream_bbox_validates_before_the_first_chunk():
    async with AsyncMapService(
        default_config=SessionConfig(num_shards=1, batch_size=2)
    ) as service:
        service.get_or_create_session("map")
        with pytest.raises(ValueError, match="inverted box"):
            async for _ in service.stream_bbox("map", (1.0, 0.0, 0.0), (-1.0, 0.0, 0.0)):
                raise AssertionError("no chunk should be produced")


@async_test
async def test_stream_bbox_interleaves_with_ingestion():
    """The session lock is released between chunks: a submit+flush landing
    mid-stream must neither deadlock nor corrupt the sweep's accounting."""
    async with AsyncMapService(
        default_config=SessionConfig(num_shards=2, batch_size=2)
    ) as service:
        requests = _requests(6)
        for request in requests[:3]:
            await service.submit(request)
        await service.flush("map")
        stream = service.stream_bbox(
            "map", (-1.0, -1.0, 0.0), (1.0, 1.0, 0.4), chunk_voxels=5
        )
        total = 0
        first = await stream.__anext__()
        total += len(first.voxels)
        for request in requests[3:]:
            await service.submit(request)
        await service.flush("map")
        async for chunk in stream:
            total += len(chunk.voxels)
        assert total == first.voxels_total


# ---------------------------------------------------------------------------
# Per-session retirement
# ---------------------------------------------------------------------------
@async_test
async def test_close_session_drains_and_retires():
    async with AsyncMapService(
        default_config=SessionConfig(num_shards=2, batch_size=4)
    ) as service:
        for request in _requests(3):
            await service.submit(request)
        session = service.manager.get_session("map")
        await service.close_session("map")
        assert session.stats.scans_ingested == 3, "drain reached the map"
        assert "map" not in service.manager
        assert "map" not in service.session_ids()
        assert session.closed
        with pytest.raises(KeyError):
            await service.query("map", 0.0, 0.0, 0.2)


@async_test
async def test_close_session_unknown_raises_keyerror():
    async with AsyncMapService(
        default_config=SessionConfig(num_shards=1)
    ) as service:
        with pytest.raises(KeyError):
            await service.close_session("never-created")


@async_test
async def test_export_octree_coroutine_matches_session_export():
    async with AsyncMapService(
        default_config=SessionConfig(num_shards=2, batch_size=4)
    ) as service:
        for request in _requests(3):
            await service.submit(request)
        await service.flush("map")
        tree = await service.export_octree("map")
        assert tree.num_leaf_nodes() > 0
        direct = service.manager.get_session("map").export_octree()
        report = compare_trees(tree, direct, 1e-9)
        assert report.equivalent, report.summary()


# ---------------------------------------------------------------------------
# Overlapped flushers (flusher_concurrency > 1)
# ---------------------------------------------------------------------------
@async_test
async def test_flusher_concurrency_spawns_k_tasks_and_stays_equivalent():
    """K flushers share one admission queue; the session lock keeps ingest
    serial, so the map still equals dispatch-order sequential insertion."""
    config = SessionConfig(num_shards=2, batch_size=2, flusher_concurrency=3)
    async with AsyncMapService(default_config=config) as service:
        service.get_or_create_session("map")
        assert len(service._entries["map"].flushers) == 3
        submitted = [
            request.with_request_id(index)
            for index, request in enumerate(_requests(10))
        ]
        for request in submitted:
            await service.submit(request)
        await service.flush("map")
        stats = service.manager.get_session("map").stats
        assert stats.scans_ingested == 10
        assert stats.flusher_cycles >= 1
        assert 1 <= stats.flusher_overlap_high_water <= 3
        _assert_session_matches_dispatch_order(service, "map", submitted)


@async_test
async def test_heavy_session_with_many_flushers_cannot_starve_others():
    """A flooded session running K flushers blocks only itself: its flushers
    park on its own session lock, never on anything the light session needs."""
    config = SessionConfig(
        num_shards=1, batch_size=2, flusher_concurrency=3, admission_queue_limit=16
    )
    async with AsyncMapService(default_config=config) as service:
        service.get_or_create_session("heavy")
        service.get_or_create_session("light")
        heavy_entry = service._entries["heavy"]
        async with heavy_entry.lock:  # the heavy session's ingestion hangs
            for request in _requests(8, session_id="heavy"):
                await service.submit(request)
            light_requests = _requests(3, session_id="light", seed=11)
            for request in light_requests:
                await service.submit(request)
            reports = await service.flush("light")  # progresses regardless
            assert sum(report.scans for report in reports) == 3
        await service.flush("heavy")
        assert service.manager.get_session("heavy").stats.scans_ingested == 8


def test_session_config_validates_flusher_concurrency():
    with pytest.raises(ValueError):
        SessionConfig(flusher_concurrency=0)
