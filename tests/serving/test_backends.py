"""Execution backends: equivalence plumbing, lifecycle, crash surfacing.

The leaf-for-leaf map equivalence across backends is property-tested in
``test_equivalence_property.py``; this module covers everything around it:
the message protocol, parent-side accounting, cache generations across the
process boundary, clean shutdown, and how a dying worker process surfaces.
"""

from __future__ import annotations

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.serving import (
    BACKEND_NAMES,
    InlineBackend,
    MapSession,
    ProcessPoolBackend,
    SessionConfig,
    ShardBackendError,
    ShardQueryRequest,
    ShardUpdateBatch,
    ThreadPoolBackend,
    make_backend,
)

CONFIG = DEFAULT_CONFIG.with_resolution(0.25)

ALL_BACKENDS = ["inline", "thread", "process", "socket"]


def _updates_for(backend, n=16):
    """A small per-shard update batch addressed to every shard."""
    from repro.core.address_gen import AddressGenerator

    generator = AddressGenerator(CONFIG.resolution_m, CONFIG.tree_depth, CONFIG.num_pes)
    converter = generator.converter
    batches = {shard: [] for shard in range(backend.num_shards)}
    index = 0
    while min(len(entries) for entries in batches.values()) < n and index < 100000:
        x = -6.0 + 0.05 * index
        key = converter.coord_to_key(x, 0.3, 0.2)
        shard = generator.shard_index(key, backend.num_shards, 12)
        batches[shard].append((key.x, key.y, key.z, True))
        index += 1
    return [
        ShardUpdateBatch(shard_id=shard, entries=tuple(entries))
        for shard, entries in batches.items()
    ]


# ---------------------------------------------------------------------------
# Registry / construction
# ---------------------------------------------------------------------------
def test_backend_registry_names():
    assert BACKEND_NAMES == ("inline", "process", "socket", "thread")
    assert isinstance(make_backend("inline", CONFIG, 2), InlineBackend)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown shard backend"):
        make_backend("rpc", CONFIG, 2)
    with pytest.raises(ValueError, match="unknown backend"):
        SessionConfig(backend="rpc")


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_backend_round_trip_apply_query_export(name):
    with make_backend(name, CONFIG, num_shards=2) as backend:
        batches = _updates_for(backend, n=8)
        results = backend.apply_shard_batches(batches)
        assert sorted(result.shard_id for result in results) == [0, 1]
        for result in results:
            assert result.updates_applied > 0
            assert result.critical_path_cycles > 0
            assert result.generation == 1
            assert backend.generation_of(result.shard_id) == 1
        # A written voxel answers occupied through the same backend.
        x, y, z, _ = batches[0].entries[0]
        answer = backend.query_key(ShardQueryRequest(shard_id=0, key=(x, y, z)))
        assert answer.status == "occupied"
        assert answer.generation == 1
        trees = backend.export_all()
        assert len(trees) == 2
        assert sum(sum(1 for _ in tree.iter_leafs()) for tree in trees) > 0
        assert backend.shard_load() == tuple(len(batch) for batch in batches)


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_empty_batches_do_not_bump_generations(name):
    with make_backend(name, CONFIG, num_shards=2) as backend:
        results = backend.apply_shard_batches(
            [ShardUpdateBatch(shard_id=0, entries=()), ShardUpdateBatch(shard_id=1, entries=())]
        )
        assert results == []
        assert backend.generation_of(0) == 0
        assert backend.generation_of(1) == 0


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_close_is_idempotent_and_use_after_close_raises(name):
    backend = make_backend(name, CONFIG, num_shards=2)
    backend.close()
    backend.close()  # idempotent
    assert backend.closed
    with pytest.raises(ShardBackendError, match="closed"):
        backend.apply_shard_batches(_updates_for_closed())
    with pytest.raises(ShardBackendError, match="closed"):
        backend.query_key(ShardQueryRequest(shard_id=0, key=(1, 1, 1)))


def _updates_for_closed():
    return [ShardUpdateBatch(shard_id=0, entries=((1, 1, 1, True),))]


def test_process_backend_shutdown_leaves_no_orphans():
    backend = ProcessPoolBackend(CONFIG, num_shards=3)
    processes = list(backend.processes)
    assert all(process.is_alive() for process in processes)
    backend.close()
    assert all(not process.is_alive() for process in processes)
    assert all(process.exitcode == 0 for process in processes)


def test_session_context_manager_closes_backend():
    config = SessionConfig(num_shards=2, backend="process").with_resolution(0.25)
    with MapSession("map", config) as session:
        assert not session.closed
        processes = list(session.backend.processes)
    assert session.closed
    assert all(not process.is_alive() for process in processes)


def test_manager_shutdown_closes_every_session():
    from repro.serving import MapSessionManager

    config = SessionConfig(num_shards=2, backend="thread").with_resolution(0.25)
    with MapSessionManager(default_config=config) as manager:
        a = manager.get_or_create_session("a")
        b = manager.get_or_create_session("b")
    assert a.closed and b.closed


# ---------------------------------------------------------------------------
# Worker crash surfacing
# ---------------------------------------------------------------------------
def test_dead_worker_process_surfaces_as_backend_error():
    backend = ProcessPoolBackend(CONFIG, num_shards=2)
    try:
        dead_pid = backend.processes[1].pid
        backend.processes[1].terminate()
        backend.processes[1].join(timeout=5.0)
        with pytest.raises(ShardBackendError, match="shard 1 worker process died") as info:
            # Killed worker: the round-trip must error out, not hang.
            backend.apply_shard_batches(
                [ShardUpdateBatch(shard_id=1, entries=((5, 5, 5, True),))]
            )
        # The error is structured: it names the shard and worker that died.
        assert info.value.shard_id == 1
        assert info.value.worker_id == f"process:{dead_pid}"
        assert f"[shard 1, worker process:{dead_pid}]" in info.value.describe()
    finally:
        backend.close()
    assert all(not process.is_alive() for process in backend.processes)


def test_dead_worker_surfaces_even_when_batch_does_not_touch_it():
    """A session missing a shard is broken for that shard's whole region, so
    a flush must error out even if its update slices all land elsewhere."""
    backend = ProcessPoolBackend(CONFIG, num_shards=2)
    try:
        backend.processes[0].terminate()
        backend.processes[0].join(timeout=5.0)
        with pytest.raises(ShardBackendError, match="shard 0 worker process died"):
            backend.apply_shard_batches(
                [ShardUpdateBatch(shard_id=1, entries=((5, 5, 5, True),))]
            )
        with pytest.raises(ShardBackendError, match="shard 0 worker process died"):
            backend.query_key(ShardQueryRequest(shard_id=1, key=(5, 5, 5)))
        # Even a flush whose slices are all empty must report the loss.
        with pytest.raises(ShardBackendError, match="shard 0 worker process died"):
            backend.apply_shard_batches(
                [
                    ShardUpdateBatch(shard_id=0, entries=()),
                    ShardUpdateBatch(shard_id=1, entries=()),
                ]
            )
    finally:
        backend.close()


def test_worker_side_exception_is_reported_not_fatal():
    backend = ProcessPoolBackend(CONFIG, num_shards=1)
    try:
        # A message addressed to the wrong shard raises inside the worker;
        # the worker must report the error and keep serving.
        bad = ShardQueryRequest(shard_id=9, key=(1, 1, 1))
        backend._send(0, "query", bad)
        with pytest.raises(ShardBackendError, match="shard 0 worker failed") as info:
            backend._recv(0)
        # The report carries the worker's own traceback for debugging.
        assert info.value.shard_id == 0
        assert "ValueError" in (info.value.remote_traceback or "")
        # The worker survived and still answers well-formed requests.
        answer = backend.query_key(ShardQueryRequest(shard_id=0, key=(1, 1, 1)))
        assert answer.status == "unknown"
    finally:
        backend.close()


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_apply_error_fail_stops_the_backend(name):
    """A failed apply may leave some shards written and others not -- the
    map no longer matches the sequential reference, so the backend must
    refuse every later interaction rather than serve inconsistent answers."""
    backend = make_backend(name, CONFIG, num_shards=2)
    try:
        good = ShardUpdateBatch(shard_id=1, entries=((5, 5, 5, True),))
        # Key component 70000 is outside the 16-bit key space: rebuilding the
        # updates raises inside the worker that owns shard 0.
        bad = ShardUpdateBatch(shard_id=0, entries=((70000, 0, 0, True),))
        with pytest.raises(ShardBackendError):
            backend.apply_shard_batches([bad, good])
        assert backend.failed is not None
        with pytest.raises(ShardBackendError, match="fail-stop"):
            backend.query_key(ShardQueryRequest(shard_id=1, key=(5, 5, 5)))
        with pytest.raises(ShardBackendError, match="fail-stop"):
            backend.export_all()
    finally:
        backend.close()
    # Close still reaps everything cleanly after a failure.
    if name == "process":
        assert all(not process.is_alive() for process in backend.processes)


def test_unknown_verb_is_reported_not_fatal():
    backend = ProcessPoolBackend(CONFIG, num_shards=1)
    try:
        backend._send(0, "selfdestruct", None)
        with pytest.raises(ShardBackendError, match="unknown shard command"):
            backend._recv(0)
        assert backend.processes[0].is_alive()
    finally:
        backend.close()


# ---------------------------------------------------------------------------
# Cache generations across the process boundary
# ---------------------------------------------------------------------------
def test_cache_invalidation_with_process_backend(small_scans):
    from repro.serving import ScanRequest

    config = SessionConfig(num_shards=2, backend="process", batch_size=2).with_resolution(0.2)
    with MapSession("map", config) as session:
        session.ingest(ScanRequest.from_scan_node("map", small_scans[0]).with_request_id(0))
        probe = (2.5, 0.0, 0.2)
        first = session.query(*probe)
        second = session.query(*probe)
        assert not first.cached and second.cached
        # A new scan bumps the written shards' generations in the parent's
        # bookkeeping, so the stale entry is dropped, not served.
        session.ingest(ScanRequest.from_scan_node("map", small_scans[1]).with_request_id(1))
        third = session.query(*probe)
        assert not third.cached
        assert session.stats.cache.stale_hits >= 1


def test_thread_and_process_generations_agree(small_scans):
    from repro.serving import ScanRequest

    generations = {}
    for backend in ("inline", "thread", "process"):
        config = SessionConfig(num_shards=2, backend=backend, batch_size=2).with_resolution(0.2)
        with MapSession("map", config) as session:
            for index, scan in enumerate(small_scans):
                session.submit(ScanRequest.from_scan_node("map", scan).with_request_id(index))
            session.flush_all()
            generations[backend] = tuple(
                session.backend.generation_of(shard)
                for shard in range(config.num_shards)
            )
    assert generations["inline"] == generations["thread"] == generations["process"]


def test_thread_pool_backend_has_inspectable_workers():
    with make_backend("thread", CONFIG, 2) as backend:
        assert isinstance(backend, ThreadPoolBackend)
        assert [worker.shard_id for worker in backend.workers] == [0, 1]
