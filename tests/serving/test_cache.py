"""Cache behaviour: warm-up hits, per-shard invalidation, LRU eviction."""

from __future__ import annotations

import pytest

from repro.serving import GenerationLRUCache, MapSession, SessionConfig
from repro.serving.types import ScanRequest


# ---------------------------------------------------------------------------
# Unit level: GenerationLRUCache
# ---------------------------------------------------------------------------
def test_put_get_roundtrip_and_counters():
    cache = GenerationLRUCache(capacity=8)
    generations = {0: 0, 1: 0}
    cache.put(("a",), 0, 0, "value-a")
    assert cache.get(("a",), generations.__getitem__) == "value-a"
    assert cache.get(("missing",), generations.__getitem__) is None
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == pytest.approx(0.5)


def test_generation_bump_invalidates_only_that_shard():
    cache = GenerationLRUCache(capacity=8)
    generations = {0: 0, 1: 0}
    cache.put(("shard0-key",), 0, 0, "v0")
    cache.put(("shard1-key",), 1, 0, "v1")
    assert cache.live_entries(generations.__getitem__) == 2

    generations[0] += 1  # a write lands on shard 0

    assert cache.live_entries(generations.__getitem__) == 1
    assert cache.get(("shard0-key",), generations.__getitem__) is None  # stale, evicted
    assert cache.get(("shard1-key",), generations.__getitem__) == "v1"  # untouched
    assert cache.stats.stale_hits == 1
    assert len(cache) == 1


def test_lru_eviction_drops_least_recently_used():
    cache = GenerationLRUCache(capacity=2)
    def generation(shard_id):
        return 0

    cache.put("a", 0, 0, 1)
    cache.put("b", 0, 0, 2)
    assert cache.get("a", generation) == 1  # refresh "a"; "b" is now LRU
    cache.put("c", 0, 0, 3)
    assert cache.stats.evictions == 1
    assert cache.get("b", generation) is None
    assert cache.get("a", generation) == 1
    assert cache.get("c", generation) == 3


def test_capacity_validation():
    with pytest.raises(ValueError):
        GenerationLRUCache(capacity=0)


def test_eviction_counter_accounts_every_overflow():
    cache = GenerationLRUCache(capacity=2)
    def generation(shard_id):
        return 0

    for index in range(5):
        cache.put(f"key-{index}", 0, 0, index)
    assert cache.stats.puts == 5
    assert cache.stats.evictions == 3
    assert len(cache) == 2
    # Refreshing an existing key is not an insertion: no eviction.
    cache.put("key-4", 0, 0, 99)
    assert cache.stats.evictions == 3
    assert cache.get("key-4", generation) == 99


def test_live_entries_tracks_per_shard_staleness_without_touching_lru():
    cache = GenerationLRUCache(capacity=4)
    generations = {0: 0, 1: 0}
    cache.put("a", 0, 0, "a")
    cache.put("b", 1, 0, "b")
    cache.put("c", 0, 0, "c")
    assert cache.live_entries(generations.__getitem__) == 3

    generations[0] += 1  # shard 0's two entries go stale
    assert cache.live_entries(generations.__getitem__) == 1
    # live_entries neither evicted the stale entries nor counted lookups.
    assert len(cache) == 3
    assert cache.stats.lookups == 0

    # A put for the new generation revives "a"; refreshing "b" leaves the
    # stale "c" entry as the LRU victim once capacity overflows.
    cache.put("a", 0, 1, "a2")
    assert cache.get("b", generations.__getitem__) == "b"
    cache.put("d", 1, 0, "d")
    cache.put("e", 1, 0, "e")
    assert cache.stats.evictions == 1
    assert cache.live_entries(generations.__getitem__) == 4


def test_clear_drops_entries_but_preserves_counters():
    cache = GenerationLRUCache(capacity=4)
    def generation(shard_id):
        return 0

    cache.put("a", 0, 0, 1)
    assert cache.get("a", generation) == 1
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.hits == 1
    assert cache.stats.puts == 1
    assert cache.get("a", generation) is None
    assert cache.stats.misses == 1


# ---------------------------------------------------------------------------
# Integration level: the cache inside a live session
# ---------------------------------------------------------------------------
@pytest.fixture
def warm_session(small_requests):
    session = MapSession("map", SessionConfig(num_shards=2, batch_size=4))
    for request in small_requests:
        session.submit(request)
    session.flush_all()
    return session


def test_repeated_point_queries_hit_the_cache(warm_session):
    point = (1.2, 0.3, 0.2)
    first = warm_session.query(*point)
    assert not first.cached
    second = warm_session.query(*point)
    assert second.cached
    assert second.status == first.status
    assert second.probability == first.probability
    assert warm_session.stats.cache.hits >= 1
    # Cache hits cost no modelled accelerator cycles.
    assert second.cycles == 0


def test_write_invalidates_only_the_written_shards(warm_session, small_scans):
    converter = warm_session.router.converter
    # Two probe points on different shards.
    probes = [(1.2, 0.3, 0.2), (-1.4, -0.7, 0.0)]
    shard_ids = [warm_session.router.shard_for_point(*p) for p in probes]
    assert shard_ids[0] != shard_ids[1], "pick probes on distinct shards"
    for probe in probes:
        warm_session.query(*probe)  # fill

    # Craft a scan whose updates all land on probe 0's shard: a zero-length
    # batch for the other shard leaves its generation untouched.
    key0 = converter.coord_to_key(*probes[0])
    target_worker = warm_session.workers[shard_ids[0]]
    other_worker = warm_session.workers[shard_ids[1]]
    generation_before = (target_worker.generation, other_worker.generation)
    from repro.core.scheduler import VoxelUpdateRequest

    target_worker.apply_updates([VoxelUpdateRequest(key0, occupied=True)])
    assert target_worker.generation == generation_before[0] + 1
    assert other_worker.generation == generation_before[1]

    hits_before = warm_session.stats.cache.hits
    stale_before = warm_session.stats.cache.stale_hits
    invalidated = warm_session.query(*probes[0])   # stale -> served fresh
    untouched = warm_session.query(*probes[1])     # still cached
    assert not invalidated.cached
    assert untouched.cached
    assert warm_session.stats.cache.stale_hits == stale_before + 1
    assert warm_session.stats.cache.hits == hits_before + 1


def test_ingest_through_pipeline_bumps_generations(warm_session, small_scans):
    generations_before = [worker.generation for worker in warm_session.workers]
    warm_session.ingest(
        ScanRequest.from_scan_node("map", small_scans[0]).with_request_id(99)
    )
    generations_after = [worker.generation for worker in warm_session.workers]
    # The ring scan spans the whole map, so every shard received updates.
    assert all(after > before for before, after in zip(generations_before, generations_after))


def test_raycast_and_bbox_share_the_point_cache(warm_session):
    box = warm_session.query_bbox((-0.6, -0.6, 0.0), (0.6, 0.6, 0.2))
    assert box.voxels_scanned > 0
    # The sweep's point lookups populated the shared point cache, so a
    # raycast through the same volume hits it.
    response = warm_session.raycast((-0.5, 0.0, 0.1), (1.0, 0.0, 0.0), 1.0)
    assert response.cache_hits > 0
    # A repeated identical sweep over the unchanged map is answered whole by
    # the bbox summary cache, without re-walking the voxels.
    repeat = warm_session.query_bbox((-0.6, -0.6, 0.0), (0.6, 0.6, 0.2))
    assert warm_session.stats.cache.bbox_hits == 1
    assert (repeat.occupied, repeat.free, repeat.unknown) == (
        box.occupied,
        box.free,
        box.unknown,
    )


# ---------------------------------------------------------------------------
# Negative-TTL entries (unknown space)
# ---------------------------------------------------------------------------
class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_negative_entries_survive_generation_bumps_until_the_ttl():
    clock = _FakeClock()
    cache = GenerationLRUCache(capacity=8, negative_ttl_s=2.0, clock=clock)
    generations = {0: 0}
    cache.put_negative("far-voxel", 0, 0, "unknown")
    assert cache.stats.negative_puts == 1

    generations[0] += 5  # heavy writes on the owning shard
    clock.now += 1.9  # still inside the TTL window
    assert cache.get("far-voxel", generations.__getitem__) == "unknown"
    assert cache.stats.negative_hits == 1
    assert cache.stats.hits == 1

    clock.now += 0.2  # past the deadline
    assert cache.get("far-voxel", generations.__getitem__) is None
    assert cache.stats.negative_expired == 1
    assert cache.stats.misses == 1
    assert len(cache) == 0


def test_zero_ttl_makes_put_negative_exactly_put():
    cache = GenerationLRUCache(capacity=8)  # negative_ttl_s defaults to 0.0
    generations = {0: 0}
    cache.put_negative("voxel", 0, 0, "unknown")
    assert cache.stats.negative_puts == 0
    assert cache.get("voxel", generations.__getitem__) == "unknown"
    assert cache.stats.negative_hits == 0
    generations[0] += 1  # a strict generation-stamped entry: one write kills it
    assert cache.get("voxel", generations.__getitem__) is None
    assert cache.stats.stale_hits == 1


def test_negative_ttl_validation():
    with pytest.raises(ValueError):
        GenerationLRUCache(capacity=8, negative_ttl_s=-0.1)


def test_live_entries_counts_unexpired_negatives():
    clock = _FakeClock()
    cache = GenerationLRUCache(capacity=8, negative_ttl_s=1.0, clock=clock)
    generations = {0: 0}
    cache.put("pos", 0, 0, "occ")
    cache.put_negative("neg", 0, 0, "unknown")
    assert cache.live_entries(generations.__getitem__) == 2
    generations[0] += 1  # kills the positive entry, not the live negative
    assert cache.live_entries(generations.__getitem__) == 1
    clock.now += 1.5  # TTL elapses: nothing lives
    assert cache.live_entries(generations.__getitem__) == 0


def test_session_config_wires_negative_ttl_into_the_session():
    clock_session = MapSession(
        "map", SessionConfig(num_shards=1, negative_ttl_s=3.0)
    )
    try:
        assert clock_session.cache.negative_ttl_s == 3.0
    finally:
        clock_session.close()
    with pytest.raises(ValueError):
        SessionConfig(negative_ttl_s=-1.0)


# ---------------------------------------------------------------------------
# Unit level: BboxResultCache
# ---------------------------------------------------------------------------
def test_bbox_cache_hits_only_on_exact_generation_vector():
    from repro.serving import BboxResultCache

    cache = BboxResultCache(capacity=4)
    key = ((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    cache.put(key, (3, 7), "summary")
    assert cache.get(key, (3, 7)) == "summary"
    assert cache.stats.bbox_hits == 1
    # Any shard moving invalidates the whole summary (exactness).
    assert cache.get(key, (3, 8)) is None
    assert cache.stats.bbox_misses == 1
    assert len(cache) == 0


def test_bbox_cache_lru_eviction_and_counters():
    from repro.serving import BboxResultCache

    cache = BboxResultCache(capacity=2)
    cache.put("a", (0,), 1)
    cache.put("b", (0,), 2)
    assert cache.get("a", (0,)) == 1  # refresh; "b" becomes LRU
    cache.put("c", (0,), 3)
    assert cache.stats.bbox_evictions == 1
    assert cache.get("b", (0,)) is None
    assert cache.get("c", (0,)) == 3
    assert cache.stats.bbox_puts == 3
    assert cache.stats.bbox_hit_rate == pytest.approx(2 / 3)


def test_bbox_cache_capacity_zero_disables():
    from repro.serving import BboxResultCache

    cache = BboxResultCache(capacity=0)
    cache.put("a", (0,), 1)
    assert len(cache) == 0
    assert cache.get("a", (0,)) is None
    with pytest.raises(ValueError):
        BboxResultCache(capacity=-1)


def test_bbox_cache_invalidates_after_ingest(warm_session, small_scans):
    """End to end: a cached sweep goes stale the moment new scans land."""
    box = ((-0.6, -0.6, 0.0), (0.6, 0.6, 0.2))
    first = warm_session.query_bbox(*box)
    warm_session.query_bbox(*box)
    assert warm_session.stats.cache.bbox_hits == 1
    warm_session.ingest(
        ScanRequest.from_scan_node("map", small_scans[0]).with_request_id(77)
    )
    fresh = warm_session.query_bbox(*box)  # re-swept, not served stale
    assert warm_session.stats.cache.bbox_hits == 1
    assert warm_session.stats.cache.bbox_misses >= 2
    assert fresh.voxels_scanned == first.voxels_scanned
