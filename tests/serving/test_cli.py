"""The ``repro-serve`` CLI demo driver."""

from __future__ import annotations

import json

import pytest

from repro.serving.cli import build_parser, main


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.sessions == 2
    assert args.scheduler == "fifo"
    assert args.shards == 2
    assert args.backend == "inline"
    assert args.use_async is False
    assert args.queue_limit == 16
    assert args.scalar_frontend is False


def test_main_runs_with_scalar_frontend(capsys):
    exit_code = main(
        [
            "--sessions", "1",
            "--scans", "1",
            "--shards", "2",
            "--batch-size", "2",
            "--backend", "inline",
            "--scalar-frontend",
        ]
    )
    assert exit_code == 0
    assert "Serving: execution backend per session" in capsys.readouterr().out


def test_parser_rejects_unknown_scheduler():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--scheduler", "lifo"])


def test_parser_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--backend", "rpc"])


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_main_runs_on_pool_backends(backend, capsys):
    exit_code = main(
        [
            "--sessions", "1",
            "--scans", "1",
            "--shards", "2",
            "--batch-size", "2",
            "--backend", backend,
            "--queries", "1",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert f"{backend} backend" in captured
    assert "Serving: execution backend per session" in captured
    assert backend in captured


def test_main_runs_pipelined_ingestion(capsys):
    exit_code = main(
        [
            "--sessions", "1",
            "--scans", "2",
            "--shards", "2",
            "--batch-size", "1",
            "--backend", "inline",
            "--pipeline",
            "--queries", "1",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "pipelined ingestion" in captured
    # The stats table labels the session's ingest mode.
    assert "pipelined" in captured


def test_main_runs_and_prints_stats(capsys):
    exit_code = main(
        [
            "--sessions", "2",
            "--scans", "1",
            "--shards", "2",
            "--batch-size", "2",
            "--scheduler", "priority",
            "--queries", "2",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "Serving: ingestion per session" in captured
    assert "Serving: queries per session" in captured
    assert "session-0" in captured and "session-1" in captured
    assert "Overall cache hit rate" in captured


def test_main_rejects_zero_sessions(capsys):
    assert main(["--sessions", "0"]) == 2
    assert "at least 1" in capsys.readouterr().err


def test_main_runs_async_front_end(capsys):
    exit_code = main(
        [
            "--sessions", "2",
            "--scans", "2",
            "--shards", "2",
            "--batch-size", "2",
            "--async",
            "--queue-limit", "4",
            "--queries", "1",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "async front end" in captured
    assert "Serving: async admission per session" in captured
    assert "backpressured submits" in captured
    assert "Overall cache hit rate" in captured


def test_main_rejects_zero_queue_limit(capsys):
    assert main(["--async", "--queue-limit", "0", "--scans", "1", "--sessions", "1"]) == 2
    assert "--queue-limit" in capsys.readouterr().err


@pytest.mark.parametrize("extra", [[], ["--async"]])
def test_metrics_json_snapshot_written_on_clean_exit(extra, tmp_path, capsys):
    path = tmp_path / "out" / "metrics.json"
    exit_code = main(
        [
            "--sessions", "1",
            "--scans", "2",
            "--shards", "2",
            "--batch-size", "2",
            "--queries", "1",
            "--metrics-json", str(path),
            *extra,
        ]
    )
    assert exit_code == 0
    assert f"Metrics snapshot written to {path}" in capsys.readouterr().out
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["metrics"]["totals"]["requests"] > 0
    assert payload["service_stats"]["totals"]["num_sessions"] >= 1
    operations = payload["metrics"]["sessions"]["session-0"]["operations"]
    assert operations["batch_apply"]["count"] >= 1
    for rollup in operations.values():
        latency = rollup["latency"]
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
