"""Chaos tests: the socket backend under injected transport/worker faults.

Each test arms a precise fault at a precise protocol step through the
``chaos`` fixture (see ``faultinject.py``) and asserts two things: the
session *survives* (detect-and-recover, not fail-stop), and the map it
serves afterwards is leaf-for-leaf identical to the same workload ingested
with no faults at all.
"""

from __future__ import annotations

import pytest
from faultinject import (
    DELAY_REPLY,
    DROP_REPLY,
    KILL_WORKER,
    SEVER_CONNECTION,
    STALL_HEARTBEAT,
    ChaosHarness,
    Fault,
    random_fault_plan,
)

from repro.core.address_gen import AddressGenerator
from repro.core.config import DEFAULT_CONFIG
from repro.core.verification import compare_trees
from repro.octomap.merge import merge_trees
from repro.serving import ShardBackendError, ShardUpdateBatch, make_backend

CONFIG = DEFAULT_CONFIG.with_resolution(0.25)
NUM_SHARDS = 2


def _rounds(num_rounds: int = 5, n: int = 10):
    """Deterministic per-shard batch rounds touching every shard."""
    generator = AddressGenerator(CONFIG.resolution_m, CONFIG.tree_depth, CONFIG.num_pes)
    converter = generator.converter
    rounds = []
    for round_index in range(num_rounds):
        batches = {shard: [] for shard in range(NUM_SHARDS)}
        index = 0
        while min(len(e) for e in batches.values()) < n and index < 100000:
            x = -6.0 + 0.05 * (index + 37 * round_index)
            key = converter.coord_to_key(x, 0.3 + 0.01 * round_index, 0.2)
            shard = generator.shard_index(key, NUM_SHARDS, 12)
            batches[shard].append((key.x, key.y, key.z, True))
            index += 1
        rounds.append(
            [ShardUpdateBatch(shard_id=s, entries=tuple(e)) for s, e in batches.items()]
        )
    return rounds


def _reference_leaves(rounds):
    backend = make_backend("inline", CONFIG, NUM_SHARDS)
    try:
        for batches in rounds:
            backend.apply_shard_batches(batches)
        tree = merge_trees(backend.export_all())
    finally:
        backend.close()
    return tree


def _drive_and_compare(chaos: ChaosHarness, rounds, **backend_kwargs):
    """Ingest every round through a chaos-wrapped backend; assert equivalence."""
    reference = _reference_leaves(rounds)
    backend = chaos.make_backend(CONFIG, NUM_SHARDS, **backend_kwargs)
    try:
        for batches in rounds:
            backend.apply_shard_batches(batches)
        report = compare_trees(reference, merge_trees(backend.export_all()), 0.0)
        assert report.equivalent, report.summary()
        assert report.max_abs_error == 0.0
        return backend.failover_stats()
    finally:
        backend.close()


# ---------------------------------------------------------------------------
# One fault at a time, each at its nastiest protocol step
# ---------------------------------------------------------------------------
def test_kill_before_apply_recovers_and_matches(chaos):
    """Worker dies before the slice is applied: recovery must re-send it."""
    rounds = _rounds()
    chaos.arm(Fault(KILL_WORKER, phase="send", verb="apply", shard_id=1))
    stats = _drive_and_compare(chaos, rounds, snapshot_every_batches=2)
    assert stats["failovers"] == 1
    assert len(chaos.fired) == 1


def test_kill_after_apply_discards_the_half_advanced_worker(chaos):
    """Worker applies, then dies with the ack in flight.  The replacement is
    rebuilt from snapshot + replay *without* that batch, and the re-sent
    slice applies exactly once -- double-application would show up as
    log-odds drift against the fault-free reference."""
    rounds = _rounds()
    chaos.arm(Fault(KILL_WORKER, phase="recv", verb="apply", shard_id=0))
    stats = _drive_and_compare(chaos, rounds, snapshot_every_batches=2)
    assert stats["failovers"] == 1


def test_dropped_reply_triggers_rehoming_not_corruption(chaos):
    """A lost ack is indistinguishable from a dead worker; the backend must
    re-home and re-send rather than wait forever or double-count."""
    rounds = _rounds()
    chaos.arm(Fault(DROP_REPLY, phase="recv", verb="apply", shard_id=1))
    stats = _drive_and_compare(chaos, rounds, snapshot_every_batches=2)
    assert stats["failovers"] == 1


def test_severed_connection_mid_message_recovers(chaos):
    rounds = _rounds()
    chaos.arm(Fault(SEVER_CONNECTION, phase="recv", verb="apply", shard_id=0))
    stats = _drive_and_compare(chaos, rounds, snapshot_every_batches=3)
    assert stats["failovers"] == 1


def test_delayed_reply_is_not_a_failure(chaos):
    """A slow worker is not a dead worker: a delayed ack within the I/O
    timeout must cause no failover at all."""
    rounds = _rounds(num_rounds=3)
    chaos.arm(Fault(DELAY_REPLY, phase="recv", verb="apply", shard_id=0, delay_s=0.2))
    stats = _drive_and_compare(chaos, rounds)
    assert stats["failovers"] == 0


def test_stalled_heartbeat_triggers_recovery(chaos):
    """A heartbeat that misses its deadline re-homes the shard even though
    no apply was in flight."""
    backend = chaos.make_backend(
        CONFIG, NUM_SHARDS, heartbeat_interval_s=0.01, heartbeat_timeout_s=0.2
    )
    try:
        rounds = _rounds(num_rounds=2)
        backend.apply_shard_batches(rounds[0])
        import time

        time.sleep(0.05)  # let the heartbeat interval elapse
        chaos.arm(Fault(STALL_HEARTBEAT, phase="recv", verb="ping", delay_s=0.3))
        # The next dispatch health-checks first; the stalled ping must
        # recover the shard, then the flush proceeds normally.
        backend.apply_shard_batches(rounds[1])
        stats = backend.failover_stats()
        assert stats["heartbeat_probes"] >= 1
        assert stats["heartbeat_failures"] == 1
        assert stats["failovers"] == 1
        reference = _reference_leaves(rounds)
        report = compare_trees(reference, merge_trees(backend.export_all()), 0.0)
        assert report.equivalent, report.summary()
    finally:
        backend.close()


def test_kill_during_export_reserves_from_recovered_state(chaos):
    rounds = _rounds(num_rounds=3)
    reference = _reference_leaves(rounds)
    backend = chaos.make_backend(CONFIG, NUM_SHARDS, snapshot_every_batches=2)
    try:
        for batches in rounds:
            backend.apply_shard_batches(batches)
        chaos.arm(Fault(KILL_WORKER, phase="recv", verb="export", shard_id=1))
        report = compare_trees(reference, merge_trees(backend.export_all()), 0.0)
        assert report.equivalent, report.summary()
        assert backend.failovers == 1
    finally:
        backend.close()


# ---------------------------------------------------------------------------
# Exhaustion and determinism
# ---------------------------------------------------------------------------
def test_killing_every_worker_fail_stops_with_structured_error(chaos):
    """Failover degrades gracefully until no live worker remains -- then the
    old fail-stop contract applies, with the shard named in the error."""
    backend = chaos.make_backend(CONFIG, NUM_SHARDS, standby_workers=0)
    try:
        rounds = _rounds(num_rounds=1)
        backend.apply_shard_batches(rounds[0])
        for handle in backend.owned_workers:
            handle.kill()
        with pytest.raises(ShardBackendError, match="no live worker") as info:
            backend.apply_shard_batches(rounds[0])
        assert info.value.shard_id is not None
        assert backend.failed is not None
    finally:
        backend.close()


def test_seeded_fault_plans_are_deterministic():
    plan_a = random_fault_plan(seed=7, num_shards=4, num_faults=5)
    plan_b = random_fault_plan(seed=7, num_shards=4, num_faults=5)
    assert plan_a == plan_b
    assert plan_a != random_fault_plan(seed=8, num_shards=4, num_faults=5)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_fault_plan_survives_and_stays_equivalent(chaos, seed):
    """Whole seeded plans (kills, drops, severs at random shards/phases):
    as long as a live worker remains, the map must match the fault-free
    reference exactly."""
    rounds = _rounds(num_rounds=6)
    chaos.arm(*random_fault_plan(seed=seed, num_shards=NUM_SHARDS, num_faults=2))
    # Two faults can kill both primaries; give the backend enough standbys.
    stats = _drive_and_compare(
        chaos, rounds, standby_workers=3, snapshot_every_batches=2
    )
    assert stats["failovers"] >= 1
