"""The shared backend fleet: leasing, O(W) resources, and equivalence.

Three families of guarantees:

* **Pool mechanics** -- leases attach/detach hosted shards, bookkeeping is
  exact, closed pools refuse work, session-id reuse never collides.
* **O(W) OS resources** -- a fleet of W slots serves hundreds of sessions
  with W pool threads / W worker processes, and heavy session churn leaks
  neither threads nor file descriptors.
* **Leaf-for-leaf equivalence** -- a session leasing from a fleet produces
  exactly the map an owned-backend session produces, on every fleet kind
  (hypothesis explores inline/thread; deterministic cases pin process and
  socket, which pay real worker start-up per example).
"""

from __future__ import annotations

import math
import multiprocessing
import os
import threading
from dataclasses import replace
from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DEFAULT_CONFIG
from repro.core.verification import compare_trees
from repro.octomap import PointCloud
from repro.serving import (
    BackendPool,
    MapSession,
    MapSessionManager,
    ScanRequest,
    SessionConfig,
    ShardBackendError,
)

_OMU_CONFIG = DEFAULT_CONFIG.with_resolution(0.25)


def _requests(num_scans: int = 3, points_per_scan: int = 20, seed: int = 7) -> List[ScanRequest]:
    import numpy as np

    rng = np.random.default_rng(seed)
    return [
        ScanRequest(
            session_id="map",
            cloud=PointCloud(rng.uniform(-3.0, 3.0, size=(points_per_scan, 3))),
            origin=(0.0, 0.1 * index, 0.2),
            max_range=5.0,
            request_id=index,
        )
        for index in range(num_scans)
    ]


# ---------------------------------------------------------------------------
# Pool mechanics
# ---------------------------------------------------------------------------
def test_lease_and_release_bookkeeping():
    with BackendPool("inline", fleet_workers=2) as pool:
        first = pool.lease("alpha", _OMU_CONFIG, num_shards=3)
        second = pool.lease("beta", _OMU_CONFIG, num_shards=2)
        assert pool.active_leases == 2
        assert pool.attached_shards == 5
        assert first.num_shards == 3
        first.close()
        assert pool.active_leases == 1
        assert pool.attached_shards == 2
        first.close()  # idempotent
        assert pool.active_leases == 1
        second.close()
        assert (pool.active_leases, pool.attached_shards) == (0, 0)


def test_fleet_worker_count_validation():
    with pytest.raises(ValueError):
        BackendPool("inline", fleet_workers=0)


def test_closed_pool_refuses_new_leases_and_use():
    pool = BackendPool("inline", fleet_workers=1)
    view = pool.lease("alpha", _OMU_CONFIG, num_shards=1)
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(ShardBackendError):
        pool.lease("beta", _OMU_CONFIG, num_shards=1)
    with pytest.raises(ShardBackendError):
        view.export_all()
    view.close()  # bookkeeping only, must not raise


def test_session_id_reuse_allocates_fresh_global_ids():
    with BackendPool("inline", fleet_workers=2) as pool:
        first = pool.lease("robot", _OMU_CONFIG, num_shards=2)
        second = pool.lease("robot", _OMU_CONFIG, num_shards=2)
        assert set(first.gids).isdisjoint(second.gids)
        assert pool.attached_shards == 4
        first.close()
        second.close()


def test_gids_stay_hidden_from_the_session_interface():
    """A lease looks exactly like an owned backend: shard ids are local."""
    with BackendPool("inline", fleet_workers=2) as pool:
        view = pool.lease("alpha", _OMU_CONFIG, num_shards=3)
        try:
            assert view.num_shards == 3
            assert len(view.export_all()) == 3
            for shard_id in range(3):
                assert view.generation_of(shard_id) == 0
                assert 0 <= view.slot_of(shard_id) < pool.num_slots
            # The hosted workers carry the fleet-global ids under the hood.
            assert [worker.shard_id for worker in view.workers] == list(view.gids)
        finally:
            view.close()


# ---------------------------------------------------------------------------
# O(W) OS resources under many sessions
# ---------------------------------------------------------------------------
def test_thread_fleet_serves_many_sessions_with_bounded_threads():
    """120 sessions x 2 shards on one 4-slot thread fleet: thread count is
    O(fleet size), never O(sessions)."""
    baseline = threading.active_count()
    config = SessionConfig(num_shards=2, backend="thread", fleet_workers=4, batch_size=4)
    manager = MapSessionManager(default_config=config)
    try:
        for index in range(120):
            manager.create_session(f"tenant-{index:03d}")
        assert len(manager) == 120
        assert len(manager.fleets) == 1
        fleet = manager.fleets[0]
        assert fleet.num_slots == 4
        assert fleet.active_leases == 120
        assert fleet.attached_shards == 240
        # A few tenants actually ingest, so the pool threads are exercised.
        for request in _requests(2):
            manager.ingest(replace(request, session_id="tenant-000"))
            manager.ingest(replace(request, session_id="tenant-077"))
        # 4 fleet threads, nothing proportional to the 120 sessions.
        assert threading.active_count() <= baseline + 4 + 2
    finally:
        manager.shutdown()
    assert manager.fleets == ()


@pytest.mark.slow
def test_process_fleet_keeps_worker_process_count_at_fleet_size():
    """30 sessions x 2 shards on one 2-process fleet: exactly 2 children."""
    config = SessionConfig(num_shards=2, backend="process", fleet_workers=2, batch_size=4)
    manager = MapSessionManager(default_config=config)
    try:
        for index in range(30):
            manager.create_session(f"tenant-{index:02d}")
        for request in _requests(2):
            manager.ingest(replace(request, session_id="tenant-00"))
        children = multiprocessing.active_children()
        assert len(children) == 2
        assert manager.fleets[0].attached_shards == 60
    finally:
        manager.shutdown()
    for process in multiprocessing.active_children():
        process.join(timeout=10.0)
    assert multiprocessing.active_children() == []


def test_session_churn_leaks_no_threads_or_descriptors():
    """Hundreds of create/ingest/close cycles against one fleet: thread and
    fd counts end where they started and the fleet keeps its fixed size."""
    threads_before = threading.active_count()
    fds_before = len(os.listdir("/proc/self/fd"))
    config = SessionConfig(num_shards=2, backend="thread", fleet_workers=2, batch_size=4)
    manager = MapSessionManager(default_config=config)
    try:
        request = _requests(1)[0]
        for cycle in range(200):
            session_id = f"churn-{cycle % 7}"  # ids are reused across cycles
            manager.create_session(session_id)
            if cycle % 20 == 0:
                manager.ingest(replace(request, session_id=session_id))
            manager.close_session(session_id).close()  # detach, then release the lease
        fleet = manager.fleets[0]
        assert fleet.num_slots == 2
        assert (fleet.active_leases, fleet.attached_shards) == (0, 0)
        assert threading.active_count() <= threads_before + fleet.num_slots
    finally:
        manager.shutdown()
    assert threading.active_count() <= threads_before
    # /proc/self/fd fluctuates by a handful (pipes, epoll); a leak of one fd
    # per churned session would show up as hundreds.
    assert len(os.listdir("/proc/self/fd")) <= fds_before + 5


# ---------------------------------------------------------------------------
# Leaf-for-leaf equivalence: fleet lease == owned backend
# ---------------------------------------------------------------------------
def _ingest_and_export(config: SessionConfig, requests, backend_pool=None):
    session = MapSession("map", config, backend_pool=backend_pool)
    try:
        for request in requests:
            session.submit(request)
        session.flush_all()
        return session.export_octree()
    finally:
        session.close()


scan_points = st.lists(
    st.tuples(
        st.floats(min_value=-4.0, max_value=4.0, allow_nan=False),
        st.floats(min_value=-4.0, max_value=4.0, allow_nan=False),
        st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    ),
    min_size=1,
    max_size=20,
)
scans_strategy = st.lists(scan_points, min_size=1, max_size=3)


@given(
    point_lists=scans_strategy,
    fleet_backend=st.sampled_from(["inline", "thread"]),
    num_shards=st.integers(min_value=1, max_value=4),
    batch_size=st.integers(min_value=1, max_value=4),
    fleet_workers=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_fleet_lease_is_leaf_for_leaf_identical_to_owned_backend(
    point_lists, fleet_backend, num_shards, batch_size, fleet_workers
):
    """Property: for any workload, any shard count and any fleet size --
    including fleets smaller than the shard count, where slots host several
    shards -- a leased session's map equals the owned inline session's map
    exactly (zero tolerance)."""
    requests = [
        ScanRequest(
            session_id="map",
            cloud=PointCloud(points),
            origin=(0.3 * math.sin(index), -0.2 * index, 0.2),
            max_range=6.0,
            request_id=index,
        )
        for index, points in enumerate(point_lists)
    ]
    owned_config = SessionConfig(num_shards=num_shards, batch_size=batch_size).with_resolution(0.25)
    owned = _ingest_and_export(owned_config, requests)
    fleet_config = owned_config.with_backend(fleet_backend).with_fleet(fleet_workers)
    with BackendPool(fleet_backend, fleet_workers=fleet_workers) as pool:
        leased = _ingest_and_export(fleet_config, requests, backend_pool=pool)
    report = compare_trees(owned, leased, 0.0)
    assert report.equivalent, f"{fleet_backend} fleet: {report.summary()}"
    assert report.max_abs_error == 0.0


@pytest.mark.parametrize("fleet_backend", ["process", "socket"])
def test_fleet_lease_matches_owned_backend_across_worker_boundaries(fleet_backend):
    """One fixed workload on the process and socket fleets (real worker
    start-up per run keeps these deterministic rather than hypothesis-swept):
    two sessions sharing one 2-slot fleet both match the inline reference."""
    requests = _requests(3)
    owned_config = SessionConfig(num_shards=3, batch_size=2).with_resolution(0.25)
    owned = _ingest_and_export(owned_config, requests)
    fleet_config = owned_config.with_backend(fleet_backend).with_fleet(2)
    with BackendPool(fleet_backend, fleet_workers=2) as pool:
        first = _ingest_and_export(fleet_config, requests, backend_pool=pool)
        second = _ingest_and_export(fleet_config, requests, backend_pool=pool)
    for label, exported in (("first", first), ("second", second)):
        report = compare_trees(owned, exported, 0.0)
        assert report.equivalent, f"{fleet_backend} fleet ({label}): {report.summary()}"
        assert report.max_abs_error == 0.0


def test_manager_builds_one_fleet_per_backend_and_size():
    """Sessions with the same (backend, fleet size) share one pool; owned
    sessions (fleet_workers=0) create none."""
    manager = MapSessionManager()
    try:
        fleet_2 = SessionConfig(num_shards=2, backend="thread", fleet_workers=2)
        fleet_3 = SessionConfig(num_shards=2, backend="thread", fleet_workers=3)
        owned = SessionConfig(num_shards=2, backend="inline")
        manager.create_session("a", fleet_2)
        manager.create_session("b", fleet_2)
        manager.create_session("c", fleet_3)
        manager.create_session("d", owned)
        assert len(manager.fleets) == 2
        sizes = sorted(pool.num_slots for pool in manager.fleets)
        assert sizes == [2, 3]
        shared = next(pool for pool in manager.fleets if pool.num_slots == 2)
        assert shared.active_leases == 2
    finally:
        manager.shutdown()
    assert manager.fleets == ()
