"""Pipeline-level front-end equivalence: vectorized default vs scalar reference.

The kernel-level suite (``tests/octomap/test_raycast_vec.py``) pins the
vectorized DDA against the scalar one per scan; this suite pins the whole
ingestion path: a session running the batched numpy front end must produce a
leaf-for-leaf identical map, identical per-shard update counts and identical
accounting to the same session with ``scalar_frontend=True`` -- on every
backend, for hypothesis-generated workloads.  It also covers the batch
plumbing around the kernel: ``from_key_arrays`` wire identity and the
converter hoist (exactly one converter derivation per session, however many
flushes run).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import VoxelUpdateRequest
from repro.core.verification import compare_trees
from repro.octomap import OcTreeKey, PointCloud
from repro.serving import MapSession, ScanRequest, SessionConfig
from repro.serving.types import ShardUpdateBatch


def _run_workload(
    scans: List[Tuple[List[Tuple[float, float, float]], Tuple[float, float, float], float]],
    scalar_frontend: bool,
    backend: str = "inline",
    num_shards: int = 2,
    batch_size: int = 2,
):
    config = SessionConfig(
        num_shards=num_shards,
        backend=backend,
        batch_size=batch_size,
        scalar_frontend=scalar_frontend,
    )
    session = MapSession("map", config)
    try:
        for request_id, (points, origin, max_range) in enumerate(scans):
            session.submit(
                ScanRequest(
                    session_id="map",
                    request_id=request_id,
                    cloud=PointCloud(points),
                    origin=origin,
                    max_range=max_range,
                )
            )
        session.flush_all()
        tree = session.export_octree()
        stats = session.stats
    finally:
        session.close()
    return tree, stats


def _assert_paths_equivalent(scans, backend="inline", **kwargs):
    tree_scalar, stats_scalar = _run_workload(
        scans, scalar_frontend=True, backend=backend, **kwargs
    )
    tree_vector, stats_vector = _run_workload(
        scans, scalar_frontend=False, backend=backend, **kwargs
    )
    report = compare_trees(tree_scalar, tree_vector, tolerance=0.0)
    assert report.equivalent, report.summary()
    for field in (
        "scans_ingested",
        "points_ingested",
        "rays_cast",
        "ray_voxels_visited",
        "voxel_updates",
        "duplicates_removed",
        "batches_dispatched",
    ):
        assert getattr(stats_scalar, field) == getattr(stats_vector, field), field
    assert stats_scalar.shard_updates == stats_vector.shard_updates
    assert stats_scalar.frontend_converter_builds == 1
    assert stats_vector.frontend_converter_builds == 1


scan_points = st.lists(
    st.tuples(
        st.floats(min_value=-5.0, max_value=5.0),
        st.floats(min_value=-5.0, max_value=5.0),
        st.floats(min_value=-2.0, max_value=2.0),
    ),
    min_size=1,
    max_size=12,
)
scan_strategy = st.tuples(
    scan_points,
    st.tuples(
        st.floats(min_value=-0.5, max_value=0.5),
        st.floats(min_value=-0.5, max_value=0.5),
        st.floats(min_value=-0.5, max_value=0.5),
    ),
    st.sampled_from([-1.0, 2.0, 6.0]),
)


class TestFrontendEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(scans=st.lists(scan_strategy, min_size=1, max_size=4))
    def test_inline_backend_random_scans(self, scans):
        _assert_paths_equivalent(scans)

    @pytest.mark.parametrize("backend", ["inline", "thread"])
    def test_fixed_workload_all_inprocess_backends(self, backend):
        rng = np.random.default_rng(23)
        scans = []
        for _ in range(6):
            n = int(rng.integers(5, 40))
            points = [tuple(row) for row in rng.uniform(-4.0, 4.0, size=(n, 3)).tolist()]
            origin = tuple(rng.uniform(-0.5, 0.5, size=3).tolist())
            scans.append((points, origin, float(rng.choice([-1.0, 5.0]))))
        _assert_paths_equivalent(scans, backend=backend, num_shards=3, batch_size=4)

    @pytest.mark.slow
    def test_fixed_workload_process_backend(self):
        rng = np.random.default_rng(29)
        scans = []
        for _ in range(4):
            points = [tuple(row) for row in rng.uniform(-3.0, 3.0, size=(10, 3)).tolist()]
            origin = tuple(rng.uniform(-0.5, 0.5, size=3).tolist())
            scans.append((points, origin, -1.0))
        _assert_paths_equivalent(scans, backend="process", num_shards=2, batch_size=2)

    def test_boundary_clipped_scan_through_pipeline(self):
        # Beams leaving the addressable volume must carve free space but no
        # endpoint, identically on both front ends (the PR-5 no-hit fix).
        # A shallow tree keeps the volume (and the clipped beam) small: at
        # depth 8 / 0.2 m the addressable cube is +/- 25.6 m.
        from dataclasses import replace as dc_replace

        base = SessionConfig(num_shards=2, batch_size=2, shard_prefix_levels=8)
        config = dc_replace(base, accelerator=dc_replace(base.accelerator, tree_depth=8))
        far = config.accelerator.resolution_m * (1 << (config.accelerator.tree_depth - 1))
        scans = [
            ([(far * 3.0, 0.0, 0.0), (1.0, 1.0, 0.5)], (0.0, 0.0, 0.0), -1.0),
            ([(0.0, far * 2.0, 0.3)], (0.2, 0.2, 0.2), -1.0),
        ]

        def run(scalar_frontend: bool):
            session = MapSession(
                "map", dc_replace(config, scalar_frontend=scalar_frontend)
            )
            try:
                for request_id, (points, origin, max_range) in enumerate(scans):
                    session.submit(
                        ScanRequest(
                            session_id="map",
                            request_id=request_id,
                            cloud=PointCloud(points),
                            origin=origin,
                            max_range=max_range,
                        )
                    )
                session.flush_all()
                return session.export_octree(), session.stats.voxel_updates
            finally:
                session.close()

        tree_scalar, updates_scalar = run(True)
        tree_vector, updates_vector = run(False)
        report = compare_trees(tree_scalar, tree_vector, tolerance=0.0)
        assert report.equivalent, report.summary()
        assert updates_scalar == updates_vector > 0


class TestBatchWirePlumbing:
    def test_from_key_arrays_matches_from_updates(self):
        rng = np.random.default_rng(31)
        keys = rng.integers(0, 0x10000, size=(50, 3), dtype=np.int64)
        occupied = rng.integers(0, 2, size=50).astype(bool)
        updates = [
            VoxelUpdateRequest(OcTreeKey(x, y, z), occupied=bool(flag))
            for (x, y, z), flag in zip(keys.tolist(), occupied.tolist())
        ]
        via_objects = ShardUpdateBatch.from_updates(3, updates)
        via_arrays = ShardUpdateBatch.from_key_arrays(3, keys, occupied)
        assert via_arrays == via_objects
        # Entries must be plain Python scalars (pickle-identical wire form).
        for entry in via_arrays.entries:
            assert all(type(component) is int for component in entry[:3])
            assert type(entry[3]) is bool

    def test_converter_derived_once_across_many_flushes(self):
        config = SessionConfig(num_shards=2, batch_size=1)
        session = MapSession("map", config)
        try:
            for request_id in range(5):
                session.submit(
                    ScanRequest(
                        session_id="map",
                        request_id=request_id,
                        cloud=PointCloud([(1.0 + 0.1 * request_id, 0.3, 0.2)]),
                        origin=(0.0, 0.0, 0.0),
                        max_range=-1.0,
                    )
                )
                session.flush_all()
            assert session.stats.batches_dispatched == 5
            assert session.stats.frontend_converter_builds == 1
        finally:
            session.close()


class TestScalarFrontendConfig:
    def test_with_scalar_frontend_helper(self):
        config = SessionConfig()
        assert config.scalar_frontend is False
        toggled = config.with_scalar_frontend()
        assert toggled.scalar_frontend is True
        assert toggled.with_scalar_frontend(False).scalar_frontend is False

    def test_pipeline_respects_config(self):
        session = MapSession("map", SessionConfig(scalar_frontend=True))
        try:
            assert session.pipeline.scalar_frontend is True
        finally:
            session.close()
        session = MapSession("map", SessionConfig())
        try:
            assert session.pipeline.scalar_frontend is False
        finally:
            session.close()
