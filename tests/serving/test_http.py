"""Socket-level integration tests for the HTTP network API.

Every test runs a real :class:`HttpMapServer` on an ephemeral loopback port
and talks to it through :class:`MapServiceClient` (or raw sockets for the
framing error paths), so the whole stack -- framing, routing, codecs,
uploads, jobs, and the :class:`AsyncMapService` underneath -- is exercised
exactly as a network caller sees it.
"""

from __future__ import annotations

import asyncio
import functools
import json
import multiprocessing

import numpy as np
import pytest

from repro.core.verification import compare_trees
from repro.octomap import PointCloud
from repro.octomap.serialization import deserialize_tree
from repro.serving import AsyncMapService, ScanRequest, SessionConfig
from repro.serving.http import HttpMapServer, MapServiceClient, ServerError, http_request
from repro.serving.http.uploads import UploadManager
from test_aio import _reference_tree

pytestmark = pytest.mark.filterwarnings(
    "error:coroutine .* was never awaited:RuntimeWarning"
)


def async_test(coro):
    """Run a coroutine test function on a fresh event loop."""

    @functools.wraps(coro)
    def wrapper(*args, **kwargs):
        return asyncio.run(coro(*args, **kwargs))

    return wrapper


class serve:
    """``async with serve() as (server, client):`` -- a live server + client.

    Owns the :class:`AsyncMapService` too: the server never closes the
    service, so the fixture drains it after the server stops accepting.
    """

    def __init__(self, config: SessionConfig = None, **server_kwargs) -> None:
        self.config = config or SessionConfig(num_shards=2, batch_size=4)
        self.server_kwargs = server_kwargs

    async def __aenter__(self):
        self.service = AsyncMapService(default_config=self.config)
        self.server = HttpMapServer(self.service, port=0, **self.server_kwargs)
        await self.server.start()
        host, port = self.server.address
        return self.server, MapServiceClient(host, port)

    async def __aexit__(self, *exc_info):
        await self.server.close()
        await self.service.close(drain=True)


def _scan_payloads(count: int, seed: int = 7):
    """JSON scan payloads mirroring ``test_aio._requests`` geometry."""
    rng = np.random.default_rng(seed)
    return [
        {
            "points": rng.uniform(-3.0, 3.0, size=(20, 3)).tolist(),
            "origin": [0.0, 0.1 * index, 0.2],
            "max_range": 5.0,
        }
        for index in range(count)
    ]


def _as_request(payload: dict, session_id: str = "map") -> ScanRequest:
    """The in-process twin of a JSON scan payload (for reference trees)."""
    return ScanRequest(
        session_id=session_id,
        cloud=PointCloud(payload["points"]),
        origin=tuple(payload["origin"]),
        max_range=payload.get("max_range", -1.0),
    )


async def _raw_exchange(host: str, port: int, raw: bytes) -> bytes:
    """Send raw bytes, return the full response (framing error paths)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(raw)
        await writer.drain()
        return await reader.read(65536)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


# ---------------------------------------------------------------------------
# Health, sessions, round trip
# ---------------------------------------------------------------------------
@async_test
async def test_healthz_and_session_lifecycle():
    async with serve() as (server, client):
        health = await client.healthz()
        assert health["status"] == "ok"
        assert health["sessions"] == 0

        created = await client.create_session("map", {"scheduler_policy": "priority"})
        assert created["created"] is True
        assert created["scheduler_policy"] == "priority"
        again = await client.create_session("map")
        assert again["created"] is False
        assert await client.list_sessions() == ["map"]

        closed = await client.delete_session("map")
        assert closed["closed"] is True
        assert await client.list_sessions() == []
        with pytest.raises(ServerError) as excinfo:
            await client.delete_session("map")
        assert excinfo.value.status == 404


@async_test
async def test_submit_flush_query_roundtrip_over_the_wire():
    async with serve() as (server, client):
        await client.create_session("map")
        payloads = _scan_payloads(3)
        receipts = [
            await client.submit_scan("map", p["points"], p["origin"], max_range=5.0)
            for p in payloads
        ]
        assert [r["request_id"] for r in receipts] == sorted(
            r["request_id"] for r in receipts
        )
        reports = await client.flush("map")
        assert sum(report["scans"] for report in reports) == 3

        # The map over HTTP equals sequential in-process insertion.
        session = server.service.manager.get_session("map")
        reference = _reference_tree(session, [_as_request(p) for p in payloads])
        tolerance = session.config.accelerator.fixed_point.scale / 2.0
        diff = compare_trees(reference, session.export_octree(), tolerance)
        assert diff.equivalent, diff.summary()

        box = await client.query_bbox("map", (-3.0, -3.0, -3.0), (3.0, 3.0, 3.0))
        assert box["occupied"] > 0
        batch = await client.query_batch("map", [[0.0, 0.0, 0.2], [1.0, 0.1, 0.2]])
        assert len(batch) == 2 and all(
            r["status"] in ("occupied", "free", "unknown") for r in batch
        )
        ray = await client.raycast("map", [0.0, 0.0, 0.2], [1.0, 0.0, 0.0], 6.0)
        assert isinstance(ray["hit"], bool)

        stats = await client.session_stats("map")
        assert stats["ingest"]["scans"] == 3
        assert stats["queries"]["bbox"] == 1


@async_test
async def test_streamed_bbox_frames_match_the_aggregate():
    async with serve() as (server, client):
        await client.create_session("map")
        for payload in _scan_payloads(3):
            await client.submit_scan(
                "map", payload["points"], payload["origin"], max_range=5.0
            )
        await client.flush("map")
        minimum, maximum = (-1.0, -1.0, 0.0), (1.0, 1.0, 0.4)
        aggregate = await client.query_bbox("map", minimum, maximum)
        frames = [
            frame
            async for frame in client.stream_bbox(
                "map", minimum, maximum, chunk_voxels=16
            )
        ]
        assert len(frames) > 1, "the sweep actually chunked"
        assert all(len(frame["voxels"]) <= 16 for frame in frames)
        assert sum(len(frame["voxels"]) for frame in frames) == aggregate["voxels_scanned"]
        assert sum(frame["occupied"] for frame in frames) == aggregate["occupied"]
        assert sum(frame["free"] for frame in frames) == aggregate["free"]
        # Streaming an inverted box fails before the head is committed.
        with pytest.raises(ServerError) as excinfo:
            async for _ in client.stream_bbox("map", (1.0, 0.0, 0.0), (0.0, 0.0, 0.0)):
                raise AssertionError("no frame expected")
        assert excinfo.value.status == 400


@async_test
async def test_deadline_misses_surface_in_http_stats():
    async with serve(
        SessionConfig(num_shards=1, batch_size=4, scheduler_policy="deadline")
    ) as (server, client):
        await client.create_session("map")
        payload = _scan_payloads(1)[0]
        # A deadline that is live at admission (so the shed gate passes) but
        # expired by dispatch must be counted as a miss.  Hold the session
        # lock so the flusher cannot ingest until the deadline has lapsed.
        entry = server.service._entries["map"]
        async with entry.lock:
            await client.submit_scan(
                "map",
                payload["points"],
                payload["origin"],
                max_range=5.0,
                deadline_in_s=0.05,
            )
            await client.submit_scan("map", payload["points"], payload["origin"], max_range=5.0)
            await asyncio.sleep(0.1)
        await client.flush("map")
        stats = await client.session_stats("map")
        assert stats["ingest"]["deadline_misses"] == 1
        totals = (await client.stats())["totals"]
        assert totals["deadline_misses"] == 1
        # An *already*-expired deadline never reaches dispatch any more: the
        # admission shed gate drops it with a typed 503 and counts it.
        with pytest.raises(ServerError) as excinfo:
            await client.submit_scan(
                "map",
                payload["points"],
                payload["origin"],
                max_range=5.0,
                deadline_in_s=-1.0,
            )
        assert excinfo.value.status == 503
        assert excinfo.value.code == "deadline_shed"
        totals = (await client.stats())["totals"]
        assert totals["shed_requests"] == 1
        assert totals["deadline_misses"] == 1  # the shed one never dispatched


# ---------------------------------------------------------------------------
# Error paths
# ---------------------------------------------------------------------------
@async_test
async def test_malformed_json_is_a_400_with_a_stable_code():
    async with serve() as (server, client):
        await client.create_session("map")
        host, port = server.address
        body = b"{this is not json"
        raw = (
            f"POST /v1/sessions/map/scans HTTP/1.1\r\nHost: h\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        ).encode() + body
        response = await _raw_exchange(host, port, raw)
        head, _, payload = response.partition(b"\r\n\r\n")
        assert b"400 Bad Request" in head
        assert json.loads(payload)["error"]["code"] == "bad_json"


@async_test
async def test_unknown_session_job_and_route_are_404s():
    async with serve() as (server, client):
        payload = _scan_payloads(1)[0]
        with pytest.raises(ServerError) as excinfo:
            await client.submit_scan("ghost", payload["points"], payload["origin"])
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_resource"
        with pytest.raises(ServerError) as excinfo:
            await client.get_job("job-999")
        assert (excinfo.value.status, excinfo.value.code) == (404, "unknown_job")
        for method, path in (("GET", "/v1/nonsense"), ("PATCH", "/v1/sessions")):
            with pytest.raises(ServerError) as excinfo:
                await client._call(method, path)
            assert (excinfo.value.status, excinfo.value.code) == (404, "unknown_route")
            # The error body advertises the API surface.
            assert any("/v1/sessions" in route for route in excinfo.value.detail["api"])


@async_test
async def test_oversized_body_is_refused_with_413_before_reading_it():
    async with serve(max_body_bytes=512) as (server, client):
        await client.create_session("map")
        big = _scan_payloads(1, seed=3)[0]
        big["points"] = (np.zeros((200, 3)) + 1.0).tolist()  # >512 bytes of JSON
        with pytest.raises(ServerError) as excinfo:
            await client.submit_scan("map", big["points"], big["origin"])
        assert (excinfo.value.status, excinfo.value.code) == (413, "body_too_large")


@async_test
async def test_upload_error_paths_over_the_wire():
    async with serve(uploads=UploadManager(max_chunk_bytes=64)) as (server, client):
        await client.create_session("map")
        init = await client.init_upload("map", total_chunks=2)
        upload_id = init["upload_id"]

        with pytest.raises(ServerError) as excinfo:
            await client.put_chunk("map", upload_id, 0, b"x" * 65)
        assert (excinfo.value.status, excinfo.value.code) == (413, "chunk_too_large")

        await client.put_chunk("map", upload_id, 0, b'{"scans": ')
        with pytest.raises(ServerError) as excinfo:
            await client.commit_upload("map", upload_id)
        assert (excinfo.value.status, excinfo.value.code) == (409, "upload_incomplete")
        assert excinfo.value.detail == {"missing_chunks": [1]}

        status = await client.upload_status("map", upload_id)
        assert status["missing_chunks"] == [1]
        with pytest.raises(ServerError) as excinfo:
            await client.put_chunk("map", "upload-999", 0, b"data")
        assert excinfo.value.status == 404
        aborted = await client.abort_upload("map", upload_id)
        assert aborted["aborted"] is True


# ---------------------------------------------------------------------------
# Chunked upload round trip
# ---------------------------------------------------------------------------
@async_test
async def test_chunked_upload_roundtrips_a_batch_above_the_body_limit():
    async with serve(max_body_bytes=2048) as (server, client):
        await client.create_session("map")
        scans = [{**p, "max_range": 5.0} for p in _scan_payloads(6, seed=11)]
        blob_bytes = len(json.dumps({"scans": scans}).encode())
        assert blob_bytes > 2048, "the batch genuinely exceeds one body"

        commit = await client.upload_scans("map", scans, chunk_bytes=1024)
        assert commit["submitted"] == 6
        assert len(commit["receipts"]) == 6
        await client.flush("map")

        # Upload-path ingestion equals sequential in-process insertion.
        session = server.service.manager.get_session("map")
        reference = _reference_tree(session, [_as_request(s) for s in scans])
        tolerance = session.config.accelerator.fixed_point.scale / 2.0
        diff = compare_trees(reference, session.export_octree(), tolerance)
        assert diff.equivalent, diff.summary()
        box = await client.query_bbox("map", (-3.0, -3.0, -3.0), (3.0, 3.0, 3.0))
        assert box["occupied"] > 0
        assert (await client.healthz())["pending_upload_bytes"] == 0


# ---------------------------------------------------------------------------
# Jobs
# ---------------------------------------------------------------------------
@async_test
async def test_export_job_runs_to_done_and_serves_the_artifact():
    async with serve() as (server, client):
        await client.create_session("map")
        for payload in _scan_payloads(3):
            await client.submit_scan(
                "map", payload["points"], payload["origin"], max_range=5.0
            )
        started = await client.start_export("map")
        assert started["status"] in ("pending", "running")
        job_id = started["job_id"]

        record = await client.wait_job(job_id)
        assert record["status"] == "done"
        # The full progression is observable from the history even though
        # polling may have missed the live stages.
        assert record["history"][:2] == ["pending", "running"]
        assert record["history"][-1] == "done"
        assert {"flush", "export", "serialize"} <= set(record["history"])
        assert record["result"]["occupied_leafs"] > 0
        assert record["has_artifact"] is True

        artifact = await client.job_result(job_id)
        assert isinstance(artifact, bytes)
        tree = deserialize_tree(artifact)
        direct = server.service.manager.get_session("map").export_octree()
        diff = compare_trees(tree, direct, 1e-9)
        assert diff.equivalent, diff.summary()
        assert any(job["job_id"] == job_id for job in await client.list_jobs())


@async_test
async def test_export_of_unknown_session_is_a_404_not_a_failed_job():
    async with serve() as (server, client):
        with pytest.raises(ServerError) as excinfo:
            await client.start_export("ghost")
        assert excinfo.value.status == 404
        assert await client.list_jobs() == []


@async_test
async def test_job_result_of_an_unfinished_job_is_a_409():
    async with serve() as (server, client):
        await client.create_session("map")
        started = await client.start_flush_all()
        record = await client.wait_job(started["job_id"])
        assert record["status"] == "done"
        # flush_all has no artifact: the result endpoint serves the JSON result.
        result = await client.job_result(started["job_id"])
        assert isinstance(result, dict)


# ---------------------------------------------------------------------------
# Multi-client equivalence across backends
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["inline", "thread", "process"])
@async_test
async def test_concurrent_http_clients_match_sequential_insertion(backend):
    config = SessionConfig(
        num_shards=2,
        batch_size=3,
        backend=backend,
        mp_start_method=(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        ),
    )
    async with serve(config) as (server, client):
        # Create before any executor thread exists (process-backend rule).
        await client.create_session("map")
        payloads = _scan_payloads(9, seed=23)

        async def run_client(worker: int):
            own = MapServiceClient(*server.address)
            receipts = {}
            for payload in payloads[worker::3]:
                receipt = await own.submit_scan(
                    "map",
                    payload["points"],
                    payload["origin"],
                    max_range=5.0,
                    client_id=f"client-{worker}",
                )
                receipts[receipt["request_id"]] = payload
            return receipts

        by_id = {}
        for receipts in await asyncio.gather(*(run_client(w) for w in range(3))):
            by_id.update(receipts)
        await client.flush("map")

        session = server.service.manager.get_session("map")
        dispatched = [
            rid for report in session.pipeline.reports for rid in report.request_ids
        ]
        assert sorted(dispatched) == sorted(by_id), "every submit dispatched once"
        reference = _reference_tree(
            session, [_as_request(by_id[rid]) for rid in dispatched]
        )
        tolerance = session.config.accelerator.fixed_point.scale / 2.0
        diff = compare_trees(reference, session.export_octree(), tolerance)
        assert diff.equivalent, diff.summary()


# ---------------------------------------------------------------------------
# Metrics pipeline + request-id middleware
# ---------------------------------------------------------------------------
@async_test
async def test_request_id_header_is_echoed_on_success_and_error():
    async with serve() as (server, client):
        ok = await http_request(*server.address, "GET", "/healthz")
        assert ok.status == 200
        first_id = int(ok.headers["x-request-id"])
        assert first_id >= 1
        # Errors carry the header too -- the middleware wraps the whole
        # dispatch, not just the happy path.
        missing = await http_request(*server.address, "GET", "/v1/sessions/nope")
        assert missing.status == 404
        assert int(missing.headers["x-request-id"]) == first_id + 1


@async_test
async def test_metrics_endpoint_reports_windowed_rollups():
    async with serve() as (server, client):
        await client.create_session("map")
        for payload in _scan_payloads(3):
            await client.submit_scan("map", payload["points"], payload["origin"], max_range=5.0)
        await client.flush("map")
        await client.query("map", 1.0, 0.0, 0.5)

        snapshot = await client._call("GET", "/v1/metrics")
        assert snapshot["totals"]["requests"] > 0
        assert snapshot["totals"]["by_outcome"]["ok"] > 0
        operations = snapshot["sessions"]["map"]["operations"]
        # Both layers report: the HTTP middleware and the async service.
        assert operations["http:scan_submit"]["count"] == 3
        assert operations["submit"]["count"] == 3
        assert operations["http:flush"]["count"] == 1
        assert operations["batch_apply"]["count"] >= 1
        for rollup in operations.values():
            latency = rollup["latency"]
            assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
            assert latency["count"] == rollup["count"]
        assert snapshot["sessions"]["map"]["windows"], "no windowed rollups"

        # The per-session route serves the same payload; unknown ids are 404.
        session_view = await client._call("GET", "/v1/metrics/sessions/map")
        assert session_view["operations"]["submit"]["count"] == 3
        with pytest.raises(ServerError) as excinfo:
            await client._call("GET", "/v1/metrics/sessions/never-seen")
        assert excinfo.value.status == 404

        # A /v1/metrics read is itself recorded (as a service-level request,
        # no session in the path) -- visible on the *next* snapshot.
        again = await client._call("GET", "/v1/metrics")
        assert again["service"]["http:metrics"]["count"] >= 1


@async_test
async def test_quota_reject_is_a_429_and_counted_in_metrics_and_stats():
    config = {"tenant": "acme", "quota_points_per_s": 1.0, "quota_burst_s": 1.0}
    async with serve() as (server, client):
        await client.create_session("map", config)
        payload = _scan_payloads(1)[0]
        await client.submit_scan("map", payload["points"], payload["origin"], max_range=5.0)
        with pytest.raises(ServerError) as excinfo:
            await client.submit_scan("map", payload["points"], payload["origin"], max_range=5.0)
        assert excinfo.value.status == 429
        assert excinfo.value.code == "quota_exceeded"
        assert excinfo.value.detail["retry_after_s"] > 0.0

        stats = await client.stats()
        assert stats["totals"]["quota_rejects"] == 1
        snapshot = await client._call("GET", "/v1/metrics")
        operations = snapshot["sessions"]["map"]["operations"]
        assert operations["submit"]["outcomes"]["rejected"] == 1
        assert operations["http:scan_submit"]["outcomes"]["rejected"] == 1
        assert snapshot["totals"]["by_outcome"]["rejected"] == 2


# ---------------------------------------------------------------------------
# Shutdown hygiene
# ---------------------------------------------------------------------------
@async_test
async def test_server_close_leaves_no_orphan_tasks():
    service = AsyncMapService(default_config=SessionConfig(num_shards=1, batch_size=2))
    server = await HttpMapServer(service, port=0).start()
    client = MapServiceClient(*server.address)
    await client.create_session("map")
    payload = _scan_payloads(1)[0]
    await client.submit_scan("map", payload["points"], payload["origin"], max_range=5.0)
    await server.close()
    await service.close(drain=True)
    assert service.manager.get_session("map").stats.scans_ingested == 1, "drained"
    leftovers = [
        task
        for task in asyncio.all_tasks()
        if task is not asyncio.current_task() and not task.done()
    ]
    assert leftovers == [], f"orphan tasks after close: {leftovers}"
    # The port is actually released.
    with pytest.raises((ConnectionRefusedError, OSError)):
        await client.healthz()
