"""Unit tests for the HTTP subsystem's transport-free pieces.

Covers the three modules that need no socket: the background-job registry
(:mod:`repro.serving.http.jobs`), the chunked-upload state machine
(:mod:`repro.serving.http.uploads`) and the JSON wire codecs
(:mod:`repro.serving.http.wire`).  The socket-level integration tests live
in ``test_http.py``.
"""

from __future__ import annotations

import asyncio
import functools
import json
import math
import time

import pytest

from repro.serving.http.jobs import DONE, FAILED, PENDING, RUNNING, JobManager
from repro.serving.http.uploads import UploadError, UploadManager
from repro.serving.http.wire import (
    HttpError,
    HttpRequest,
    json_body,
    point3,
    require_field,
    scan_request_from_payload,
    session_config_from_payload,
)
from repro.serving.session import SessionConfig


def async_test(coroutine):
    @functools.wraps(coroutine)
    def runner(*args, **kwargs):
        return asyncio.run(coroutine(*args, **kwargs))

    return runner


class FakeClock:
    """Steppable monotonic clock for TTL tests."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# JobManager
# ---------------------------------------------------------------------------
@async_test
async def test_job_history_records_the_full_progression():
    jobs = JobManager()

    async def body(handle):
        handle.stage("flush", "draining queues")
        handle.stage("export")
        return {"leafs": 7}

    record = jobs.start("export", body)
    assert record.status == PENDING, "observable before the first await"
    finished = await jobs.wait(record.job_id)
    assert finished.status == DONE
    assert finished.result == {"leafs": 7}
    assert [stage for stage, _ in finished.history] == [
        PENDING,
        RUNNING,
        "flush",
        "export",
        DONE,
    ]
    timestamps = [timestamp for _, timestamp in finished.history]
    assert timestamps == sorted(timestamps)


@async_test
async def test_failed_job_captures_the_exception_and_keeps_the_loop_alive():
    jobs = JobManager()

    async def body(handle):
        handle.stage("flush")
        raise RuntimeError("shard worker died")

    record = jobs.start("export", body)
    finished = await jobs.wait(record.job_id)
    assert finished.status == FAILED
    assert finished.error == "RuntimeError: shard worker died"
    assert finished.history[-1][0] == FAILED
    assert finished.result is None


@async_test
async def test_job_artifact_is_kept_out_of_the_polling_payload():
    jobs = JobManager()

    async def body(handle):
        handle.set_artifact(b"\x00\x01octree", content_type="application/x-octree")
        return {"bytes": 8}

    record = jobs.start("export", body)
    finished = await jobs.wait(record.job_id)
    payload = finished.payload()
    assert payload["has_artifact"] is True
    assert "artifact" not in payload
    assert finished.artifact == b"\x00\x01octree"
    assert finished.artifact_content_type == "application/x-octree"


@async_test
async def test_completed_jobs_purge_after_the_ttl():
    clock = FakeClock()
    jobs = JobManager(completed_ttl_s=60.0, clock=clock)

    async def body(handle):
        return None

    record = jobs.start("flush_all", body)
    await jobs.wait(record.job_id)
    clock.advance(59.0)
    assert jobs.get(record.job_id) is not None
    clock.advance(2.0)
    assert jobs.get(record.job_id) is None
    assert len(jobs) == 0


@async_test
async def test_running_jobs_survive_the_ttl_until_they_finish():
    clock = FakeClock()
    jobs = JobManager(completed_ttl_s=1.0, clock=clock)
    release = asyncio.Event()

    async def body(handle):
        await release.wait()
        return None

    record = jobs.start("export", body)
    await asyncio.sleep(0)
    clock.advance(1_000.0)
    assert jobs.get(record.job_id) is not None, "in-flight jobs never expire"
    release.set()
    await jobs.wait(record.job_id)
    clock.advance(2.0)
    assert jobs.get(record.job_id) is None


@async_test
async def test_close_cancels_in_flight_jobs():
    jobs = JobManager()
    started = asyncio.Event()

    async def body(handle):
        started.set()
        await asyncio.sleep(3600)

    record = jobs.start("export", body)
    await started.wait()
    await jobs.close()
    assert record.status == FAILED
    assert record.error == "cancelled"
    # Idempotent: a second close with nothing in flight is a no-op.
    await jobs.close()


# ---------------------------------------------------------------------------
# UploadManager
# ---------------------------------------------------------------------------
def _scan_blob(scans) -> bytes:
    return json.dumps({"scans": scans}).encode("utf-8")


def test_upload_init_validates_shape_and_quota():
    uploads = UploadManager(max_chunks=8, max_upload_bytes=1024)
    with pytest.raises(UploadError) as excinfo:
        uploads.init("map", total_chunks=0)
    assert (excinfo.value.status, excinfo.value.code) == (400, "bad_upload")
    with pytest.raises(UploadError) as excinfo:
        uploads.init("map", total_chunks=9)
    assert excinfo.value.status == 400
    with pytest.raises(UploadError) as excinfo:
        uploads.init("map", total_chunks=2, total_bytes=2048)
    assert (excinfo.value.status, excinfo.value.code) == (413, "upload_too_large")
    record = uploads.init("map", total_chunks=2, total_bytes=512)
    assert record.missing_chunks == [0, 1]
    assert len(uploads) == 1


def test_upload_lookup_is_session_scoped():
    uploads = UploadManager()
    record = uploads.init("map-a", total_chunks=1)
    with pytest.raises(UploadError) as excinfo:
        uploads.get("map-b", record.upload_id)
    assert (excinfo.value.status, excinfo.value.code) == (404, "unknown_upload")
    with pytest.raises(UploadError):
        uploads.get("map-a", "upload-999")
    assert uploads.get("map-a", record.upload_id) is record


def test_oversized_chunk_is_refused_with_413():
    uploads = UploadManager(max_chunk_bytes=16)
    record = uploads.init("map", total_chunks=1)
    with pytest.raises(UploadError) as excinfo:
        uploads.put_chunk("map", record.upload_id, 0, b"x" * 17)
    assert (excinfo.value.status, excinfo.value.code) == (413, "chunk_too_large")
    # The refused chunk was not stored.
    assert record.missing_chunks == [0]


def test_out_of_range_chunk_index_is_a_400():
    uploads = UploadManager()
    record = uploads.init("map", total_chunks=2)
    for index in (-1, 2):
        with pytest.raises(UploadError) as excinfo:
            uploads.put_chunk("map", record.upload_id, index, b"data")
        assert (excinfo.value.status, excinfo.value.code) == (400, "bad_chunk_index")


def test_chunk_retry_is_idempotent_but_conflicts_on_different_bytes():
    uploads = UploadManager()
    record = uploads.init("map", total_chunks=2)
    uploads.put_chunk("map", record.upload_id, 0, b"alpha")
    uploads.put_chunk("map", record.upload_id, 0, b"alpha")  # retry: fine
    assert record.received_bytes == 5, "retry did not double-count"
    with pytest.raises(UploadError) as excinfo:
        uploads.put_chunk("map", record.upload_id, 0, b"OTHER")
    assert (excinfo.value.status, excinfo.value.code) == (409, "chunk_conflict")


def test_commit_with_missing_chunks_names_them():
    uploads = UploadManager()
    record = uploads.init("map", total_chunks=3)
    uploads.put_chunk("map", record.upload_id, 1, b'"mid"')
    with pytest.raises(UploadError) as excinfo:
        uploads.commit("map", record.upload_id)
    assert (excinfo.value.status, excinfo.value.code) == (409, "upload_incomplete")
    assert excinfo.value.detail == {"missing_chunks": [0, 2]}
    # The upload is still pending -- the client can resume.
    assert uploads.get("map", record.upload_id) is record


def test_commit_checks_the_declared_total_bytes():
    uploads = UploadManager()
    blob = _scan_blob([{"points": [[1.0, 0.0, 0.0]], "origin": [0.0, 0.0, 0.0]}])
    record = uploads.init("map", total_chunks=1, total_bytes=len(blob) + 1)
    uploads.put_chunk("map", record.upload_id, 0, blob)
    with pytest.raises(UploadError) as excinfo:
        uploads.commit("map", record.upload_id)
    assert (excinfo.value.status, excinfo.value.code) == (409, "size_mismatch")


def test_commit_decodes_and_releases_the_upload():
    uploads = UploadManager()
    scans = [
        {"points": [[1.0, 0.0, 0.0]], "origin": [0.0, 0.0, 0.0]},
        {"points": [[0.0, 1.0, 0.0]], "origin": [0.0, 0.0, 0.0]},
    ]
    blob = _scan_blob(scans)
    half = len(blob) // 2
    record = uploads.init("map", total_chunks=2, total_bytes=len(blob))
    # Out-of-order arrival is fine.
    uploads.put_chunk("map", record.upload_id, 1, blob[half:])
    uploads.put_chunk("map", record.upload_id, 0, blob[:half])
    assert uploads.commit("map", record.upload_id) == scans
    assert uploads.pending_bytes() == 0
    with pytest.raises(UploadError):
        uploads.get("map", record.upload_id)


def test_commit_rejects_non_scan_documents():
    uploads = UploadManager()
    for blob, note in (
        (b"\xff\xfe", "not utf-8"),
        (b"{truncated", "not json"),
        (b"[1, 2]", "not an object"),
        (b'{"scans": 3}', "scans not a list"),
        (b'{"scans": [1]}', "scan not an object"),
    ):
        record = uploads.init("map", total_chunks=1)
        uploads.put_chunk("map", record.upload_id, 0, blob)
        with pytest.raises(UploadError) as excinfo:
            uploads.commit("map", record.upload_id)
        assert excinfo.value.code == "bad_upload_json", note


def test_per_upload_and_server_wide_quotas():
    uploads = UploadManager(max_chunk_bytes=64, max_upload_bytes=100, max_total_bytes=150)
    first = uploads.init("map", total_chunks=3)
    uploads.put_chunk("map", first.upload_id, 0, b"x" * 60)
    with pytest.raises(UploadError) as excinfo:
        uploads.put_chunk("map", first.upload_id, 1, b"x" * 50)
    assert (excinfo.value.status, excinfo.value.code) == (413, "upload_too_large")
    # A second upload pushes the *server-wide* buffer over 150 bytes.
    second = uploads.init("map", total_chunks=2)
    uploads.put_chunk("map", second.upload_id, 0, b"y" * 60)
    with pytest.raises(UploadError) as excinfo:
        uploads.put_chunk("map", second.upload_id, 1, b"y" * 40)
    assert (excinfo.value.status, excinfo.value.code) == (429, "upload_quota")
    # Aborting the first releases its bytes and unblocks the second.
    uploads.abort("map", first.upload_id)
    uploads.put_chunk("map", second.upload_id, 1, b"y" * 40)


def test_stale_uploads_are_purged_by_ttl():
    clock = FakeClock()
    uploads = UploadManager(stale_ttl_s=30.0, clock=clock)
    record = uploads.init("map", total_chunks=2)
    uploads.put_chunk("map", record.upload_id, 0, b"data")
    clock.advance(29.0)
    assert uploads.get("map", record.upload_id) is record
    # Any activity refreshes the idle timer.
    uploads.put_chunk("map", record.upload_id, 0, b"data")
    clock.advance(29.0)
    assert uploads.get("map", record.upload_id) is record
    clock.advance(2.0)
    with pytest.raises(UploadError) as excinfo:
        uploads.get("map", record.upload_id)
    assert excinfo.value.status == 404
    assert uploads.pending_bytes() == 0


def test_abort_session_discards_only_that_sessions_uploads():
    uploads = UploadManager()
    doomed_a = uploads.init("map-a", total_chunks=1)
    doomed_b = uploads.init("map-a", total_chunks=1)
    kept = uploads.init("map-b", total_chunks=1)
    assert uploads.abort_session("map-a") == 2
    for record in (doomed_a, doomed_b):
        with pytest.raises(UploadError):
            uploads.get("map-a", record.upload_id)
    assert uploads.get("map-b", kept.upload_id) is kept


# ---------------------------------------------------------------------------
# Wire codecs
# ---------------------------------------------------------------------------
def _request(body: bytes = b"") -> HttpRequest:
    return HttpRequest(method="POST", path="/", query={}, headers={}, body=body)


def test_json_body_rejects_junk_and_non_objects():
    assert json_body(_request(b"")) == {}
    assert json_body(_request(b'{"a": 1}')) == {"a": 1}
    with pytest.raises(HttpError) as excinfo:
        json_body(_request(b"{not json"))
    assert (excinfo.value.status, excinfo.value.code) == (400, "bad_json")
    with pytest.raises(HttpError) as excinfo:
        json_body(_request(b"[1, 2, 3]"))
    assert excinfo.value.code == "bad_json"


def test_require_field_and_point3_map_to_400():
    with pytest.raises(HttpError) as excinfo:
        require_field({}, "points")
    assert (excinfo.value.status, excinfo.value.code) == (400, "missing_field")
    assert point3([1, "2", 3.5], "origin") == (1.0, 2.0, 3.5)
    for junk in (None, [1, 2], [1, 2, "x"], "abc"):
        with pytest.raises(HttpError) as excinfo:
            point3(junk, "origin")
        assert excinfo.value.code == "bad_point"


def test_scan_request_payload_roundtrip_and_deadline_conversion():
    before = time.monotonic()
    request = scan_request_from_payload(
        "map",
        {
            "points": [[1.0, 0.0, 0.2], [0.5, 0.5, 0.2]],
            "origin": [0.0, 0.0, 0.2],
            "max_range": 12.5,
            "priority": 3,
            "deadline_in_s": 0.25,
            "client_id": "drone-7",
        },
    )
    after = time.monotonic()
    assert request.session_id == "map"
    assert len(request.cloud) == 2
    assert request.origin == (0.0, 0.0, 0.2)
    assert request.max_range == 12.5
    assert request.priority == 3
    assert request.client_id == "drone-7"
    # deadline_in_s is relative; the wire codec anchors it to the service's
    # monotonic clock at decode time.
    assert before + 0.25 <= request.deadline_s <= after + 0.25


def test_scan_request_defaults_leave_the_deadline_unbounded():
    request = scan_request_from_payload(
        "map", {"points": [[1.0, 0.0, 0.0]], "origin": [0, 0, 0]}
    )
    assert math.isinf(request.deadline_s)
    assert request.max_range == -1.0
    assert request.priority == 0


def test_scan_request_shape_violations_are_400s():
    good = {"points": [[1.0, 0.0, 0.0]], "origin": [0.0, 0.0, 0.0]}
    cases = [
        ({}, "missing_field"),
        ({"points": [[1.0, 0.0, 0.0]]}, "missing_field"),
        ({**good, "points": "junk"}, "bad_points"),
        ({**good, "origin": [1.0]}, "bad_point"),
        ({**good, "max_range": "far"}, "bad_field"),
        ({**good, "deadline_in_s": "soon"}, "bad_field"),
    ]
    for payload, code in cases:
        with pytest.raises(HttpError) as excinfo:
            scan_request_from_payload("map", payload)
        assert excinfo.value.status == 400, payload
        assert excinfo.value.code == code, payload


def test_session_config_overrides_apply_on_top_of_the_default():
    default = SessionConfig(num_shards=1, batch_size=8)
    assert session_config_from_payload(default, None) is None
    assert session_config_from_payload(default, {}) is None
    config = session_config_from_payload(
        default, {"num_shards": 4, "scheduler_policy": "deadline"}
    )
    assert config.num_shards == 4
    assert config.scheduler_policy == "deadline"
    assert config.batch_size == 8, "unspecified knobs keep the service default"


def test_session_config_resolution_override_and_unknown_keys():
    default = SessionConfig(num_shards=1)
    config = session_config_from_payload(default, {"resolution_m": 0.1})
    assert config.accelerator.resolution_m == pytest.approx(0.1)
    with pytest.raises(HttpError) as excinfo:
        session_config_from_payload(default, {"num_shard": 4})
    assert (excinfo.value.status, excinfo.value.code) == (400, "bad_config")
    assert "num_shard" in excinfo.value.message
    with pytest.raises(HttpError) as excinfo:
        session_config_from_payload(default, {"num_shards": "many"})
    assert excinfo.value.code == "bad_config"
