"""Tests of the metrics pipeline: histogram accuracy, the windowed store,
the QoS policies (quotas + deadline shedding) under a fake clock, and the
metrics-vs-stats consistency of an instrumented workload."""

from __future__ import annotations

import asyncio
import functools
import json
import math

import numpy as np
import pytest

from repro.serving import (
    AsyncMapService,
    MapSessionManager,
    ScanRequest,
    ServiceStats,
    SessionConfig,
    SessionStats,
)
from repro.serving.metrics import (
    DeadlineShed,
    DeadlineShedPolicy,
    LatencyHistogram,
    MetricsStore,
    TenantQuota,
    TenantQuotaExceeded,
    TenantQuotaRegistry,
    default_bounds,
    write_metrics_json,
)


def async_test(coro):
    """Run a coroutine test function on a fresh event loop."""

    @functools.wraps(coro)
    def wrapper(*args, **kwargs):
        return asyncio.run(coro(*args, **kwargs))

    return wrapper


class FakeClock:
    """A steppable monotonic clock for deterministic QoS/rollup tests."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# Fixed-bucket latency histogram
# ---------------------------------------------------------------------------

def test_histogram_percentiles_within_one_bucket_of_sorted_samples():
    """Any reported percentile is within the bucket ratio of the true sample.

    The histogram's documented accuracy contract: with 10 buckets per decade
    the relative error is bounded by ``10**0.1 - 1`` (~26%), verified here
    against the sorted raw samples the hot path never keeps.
    """
    rng = np.random.default_rng(7)
    samples = 10.0 ** rng.uniform(-5.0, 0.7, size=400)  # 10us .. ~5s
    hist = LatencyHistogram()
    for sample in samples:
        hist.observe(float(sample))
    ordered = np.sort(samples)
    ratio = 10.0 ** 0.1
    for q in (10.0, 50.0, 90.0, 95.0, 99.0):
        rank = q / 100.0 * len(ordered)
        true = float(ordered[min(len(ordered) - 1, max(0, math.ceil(rank) - 1))])
        got = hist.percentile(q)
        assert true / ratio * (1 - 1e-9) <= got <= true * ratio * (1 + 1e-9), (
            q,
            true,
            got,
        )


def test_histogram_percentiles_are_monotone_and_clamped():
    hist = LatencyHistogram()
    for sample in (0.001, 0.002, 0.004, 0.008, 0.5):
        hist.observe(sample)
    values = [hist.percentile(q) for q in (0.0, 25.0, 50.0, 75.0, 95.0, 100.0)]
    assert values == sorted(values)
    # Clamped to the observed range: no percentile escapes [min, max].
    assert values[0] >= 0.001 and values[-1] <= 0.5
    quantiles = hist.quantiles()
    assert quantiles["p50_ms"] <= quantiles["p95_ms"] <= quantiles["p99_ms"]
    assert quantiles["max_ms"] == pytest.approx(500.0)


def test_histogram_empty_and_single_sample():
    hist = LatencyHistogram()
    assert hist.percentile(99.0) == 0.0
    assert hist.mean_s == 0.0
    assert hist.quantiles()["max_ms"] == 0.0
    hist.observe(0.125)
    # One sample: every percentile collapses onto it (the clamp at work).
    for q in (1.0, 50.0, 99.0):
        assert hist.percentile(q) == pytest.approx(0.125)
    hist.observe(-5.0)  # negative clamps to zero, never throws
    assert hist.total == 2
    assert hist.min_s == 0.0


def test_histogram_merge_matches_pooled_observations():
    rng = np.random.default_rng(11)
    left, right, pooled = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
    for index, sample in enumerate(10.0 ** rng.uniform(-4.0, 0.0, size=100)):
        (left if index % 2 else right).observe(float(sample))
        pooled.observe(float(sample))
    left.merge(right)
    assert left.counts == pooled.counts
    assert left.total == pooled.total
    assert left.percentile(95.0) == pooled.percentile(95.0)
    with pytest.raises(ValueError):
        left.merge(LatencyHistogram(bounds=[0.1, 1.0]))


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        LatencyHistogram(bounds=[1.0, 0.5])
    with pytest.raises(ValueError):
        LatencyHistogram(bounds=[-1.0, 1.0])
    with pytest.raises(ValueError):
        default_bounds(minimum_s=0.0)
    with pytest.raises(ValueError):
        default_bounds(per_decade=0)


# ---------------------------------------------------------------------------
# MetricsStore: ring bounds, window eviction, snapshots
# ---------------------------------------------------------------------------

def _observe(store: MetricsStore, started_s: float, outcome: str = "ok", **kwargs):
    defaults = dict(
        tenant="t", session_id="map", operation="submit", duration_s=0.001
    )
    defaults.update(kwargs)
    store.observe(outcome=outcome, started_s=started_s, **defaults)


def test_rollups_evict_old_windows_but_keep_totals():
    clock = FakeClock()
    store = MetricsStore(window_s=10.0, max_windows=2, clock=clock)
    for started in (5.0, 15.0, 25.0, 35.0):
        clock.now = started
        _observe(store, started)
    pairs = store.windows("map")
    assert [start for start, _ in pairs] == [20.0, 30.0]  # 0.0 / 10.0 evicted
    assert all(rollup.count == 1 for _, rollup in pairs)
    (totals,) = store.totals("map")
    assert totals.count == 4  # cumulative totals never evict
    snapshot = store.snapshot()
    assert snapshot["totals"]["requests"] == 4
    assert len(snapshot["sessions"]["map"]["windows"]) == 2


def test_recent_ring_is_bounded_and_keeps_newest():
    store = MetricsStore(ring_capacity=4, clock=FakeClock())
    for index in range(10):
        _observe(store, float(index), request_id=index)
    records = store.recent()
    assert [r.request_id for r in records] == [6, 7, 8, 9]
    assert [r.request_id for r in store.recent(limit=2)] == [8, 9]
    assert store.total_requests() == 10


def test_disabled_store_drops_records_at_the_door():
    store = MetricsStore(enabled=False, clock=FakeClock())
    for index in range(5):
        _observe(store, float(index))
    assert store.total_requests() == 0
    assert store.recent() == []
    snapshot = store.snapshot()
    assert snapshot["enabled"] is False
    assert snapshot["totals"]["requests"] == 0
    assert snapshot["totals"]["dropped_records"] == 5
    assert snapshot["sessions"] == {}


def test_session_snapshot_and_outcome_accounting():
    clock = FakeClock()
    store = MetricsStore(clock=clock)
    _observe(store, 0.0, outcome="ok")
    _observe(store, 0.0, outcome="rejected")
    _observe(store, 0.0, outcome="shed")
    _observe(store, 0.0, outcome="error")
    assert store.outcome_counts() == {"ok": 1, "rejected": 1, "shed": 1, "error": 1}
    payload = store.session_snapshot("map")
    rollup = payload["operations"]["submit"]
    assert rollup["count"] == 4
    assert rollup["error_rate"] == pytest.approx(0.25)
    assert rollup["shed_rate"] == pytest.approx(0.5)  # rejected + shed
    with pytest.raises(KeyError):
        store.session_snapshot("never-seen")


def test_write_metrics_json_roundtrip(tmp_path):
    store = MetricsStore(clock=FakeClock())
    _observe(store, 0.0)
    stats = ServiceStats()
    stats.register(SessionStats(session_id="map", num_shards=2))
    path = write_metrics_json(tmp_path / "nested" / "metrics.json", store, stats)
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["metrics"]["totals"]["requests"] == 1
    assert payload["service_stats"]["totals"]["num_sessions"] == 1


# ---------------------------------------------------------------------------
# QoS policies under a fake clock
# ---------------------------------------------------------------------------

def test_token_bucket_charges_and_refills_deterministically():
    clock = FakeClock()
    bucket = TenantQuota(rate_per_s=100.0, burst_s=1.0, clock=clock)
    assert bucket.capacity == 100.0
    assert bucket.try_charge(80.0) is None
    retry = bucket.try_charge(30.0)  # 20 tokens left, need 30
    assert retry == pytest.approx(0.1)
    clock.advance(0.1)  # exactly the hinted wait
    assert bucket.try_charge(30.0) is None
    assert bucket.available == pytest.approx(0.0)


def test_oversized_cost_admitted_once_bucket_is_full():
    clock = FakeClock()
    bucket = TenantQuota(rate_per_s=10.0, burst_s=1.0, clock=clock)
    assert bucket.try_charge(45.0) is None  # > capacity, bucket goes negative
    assert bucket.tokens == pytest.approx(-35.0)
    retry = bucket.try_charge(1.0)
    assert retry == pytest.approx(3.6)  # (1 - (-35)) / 10, capped at capacity
    clock.advance(4.5)  # refill back to capacity
    assert bucket.try_charge(45.0) is None  # oversized admits again at full


def test_quota_registry_semantics():
    clock = FakeClock()
    registry = TenantQuotaRegistry(clock=clock)
    registry.charge("free", 1e9, rate_per_s=0.0)  # no quota -> always admits
    assert registry.bucket("free") is None
    registry.charge("acme", 8.0, rate_per_s=10.0, burst_s=1.0)
    with pytest.raises(TenantQuotaExceeded) as excinfo:
        registry.charge("acme", 8.0, rate_per_s=10.0, burst_s=1.0)
    assert excinfo.value.tenant == "acme"
    assert excinfo.value.retry_after_s == pytest.approx(0.6)
    # Sessions sharing the tenant share the bucket: the rate of the first
    # charge sticks.
    assert registry.bucket("acme").rate_per_s == 10.0


def test_shed_policy_only_sheds_past_deadlines_before_first_observation():
    clock = FakeClock(100.0)
    policy = DeadlineShedPolicy(clock=clock)
    policy.check("map", float("inf"), queue_depth=10_000)  # inf never sheds
    policy.check("map", 100.5, queue_depth=10_000)  # no estimate yet
    with pytest.raises(DeadlineShed) as excinfo:
        policy.check("map", 99.0, queue_depth=0)  # already missed
    assert excinfo.value.deadline_s == 99.0
    assert excinfo.value.feasible_s == pytest.approx(100.0)


def test_shed_policy_uses_queue_depth_times_observed_cost():
    clock = FakeClock(100.0)
    policy = DeadlineShedPolicy(alpha=0.5, clock=clock)
    policy.observe_batch(4.0, requests=2)  # 2 s/request
    assert policy.ema_seconds_per_request == pytest.approx(2.0)
    policy.observe_batch(2.0, requests=2)  # EMA halves toward 1 s/request
    assert policy.ema_seconds_per_request == pytest.approx(1.5)
    assert policy.feasible_at(queue_depth=4) == pytest.approx(106.0)
    policy.check("map", 106.5, queue_depth=4)  # feasible before deadline
    with pytest.raises(DeadlineShed):
        policy.check("map", 105.0, queue_depth=4)
    policy.observe_batch(-1.0, requests=3)  # garbage samples are ignored
    policy.observe_batch(1.0, requests=0)
    assert policy.ema_seconds_per_request == pytest.approx(1.5)


# ---------------------------------------------------------------------------
# QoS + metrics accounting through the async service
# ---------------------------------------------------------------------------

@async_test
async def test_quota_rejects_are_counted_in_stats_and_metrics(small_requests):
    config = SessionConfig(
        num_shards=1,
        batch_size=4,
        tenant="acme",
        quota_points_per_s=10.0,
        quota_burst_s=1.0,
    )
    clock = FakeClock()
    async with AsyncMapService(default_config=config) as service:
        service.quotas = TenantQuotaRegistry(clock=clock)
        await service.submit(small_requests[0])  # 90 points vs capacity 10:
        with pytest.raises(TenantQuotaExceeded) as excinfo:  # bucket now dry
            await service.submit(small_requests[1])
        assert excinfo.value.retry_after_s == pytest.approx(9.0)
        clock.advance(9.0)  # refilled back to a full bucket
        await service.submit(small_requests[1])
        await service.flush_all()
        manager = service.manager
    stats = manager.service_stats.session("map")
    assert stats.quota_rejects == 1
    assert stats.async_submits == 2
    (submit,) = [r for r in manager.metrics.totals("map") if r.operation == "submit"]
    assert submit.outcomes["ok"] == 2
    assert submit.outcomes["rejected"] == 1
    assert manager.service_stats.to_dict()["totals"]["quota_rejects"] == 1


@async_test
async def test_deadline_shed_is_counted_in_stats_and_metrics(small_requests):
    clock = FakeClock(100.0)
    async with AsyncMapService(
        default_config=SessionConfig(num_shards=1, batch_size=4)
    ) as service:
        service.get_or_create_session("map")
        service._entries["map"].shed_policy = DeadlineShedPolicy(clock=clock)
        doomed = ScanRequest(
            session_id="map",
            cloud=small_requests[0].cloud,
            origin=small_requests[0].origin,
            deadline_s=99.0,  # already behind the (fake) monotonic clock
        )
        with pytest.raises(DeadlineShed):
            await service.submit(doomed)
        await service.submit(small_requests[1])  # no deadline: admitted
        await service.flush_all()
        manager = service.manager
    stats = manager.service_stats.session("map")
    assert stats.shed_requests == 1
    assert stats.async_submits == 1
    (submit,) = [r for r in manager.metrics.totals("map") if r.operation == "submit"]
    assert submit.outcomes["shed"] == 1
    assert submit.outcomes["ok"] == 1
    assert manager.service_stats.to_dict()["totals"]["shed_requests"] == 1


@async_test
async def test_metrics_agree_with_service_stats_after_a_mixed_workload(small_requests):
    manager = MapSessionManager(
        default_config=SessionConfig(num_shards=2, batch_size=2)
    )
    async with AsyncMapService(manager, queue_limit=8) as service:
        for request in small_requests:
            await service.submit(request)
        await service.flush("map")
        for _ in range(3):
            await service.query("map", 1.0, 0.0, 0.5)
    store = manager.metrics
    stats = manager.service_stats.session("map")
    rollups = {r.operation: r for r in store.totals("map")}
    assert rollups["submit"].outcomes["ok"] == stats.async_submits
    assert rollups["submit"].count == len(small_requests)
    assert rollups["flush"].outcomes["ok"] == 1
    assert rollups["query"].count == stats.point_queries == 3
    assert rollups["batch_apply"].count == stats.batches_dispatched
    # No QoS events in this workload -- both surfaces agree on zero.
    pooled = store.outcome_counts()
    assert pooled["rejected"] == stats.queue_rejects + stats.quota_rejects == 0
    assert pooled["shed"] == stats.shed_requests == 0
    assert store.total_requests() == sum(r.count for r in store.totals())


def test_manager_ingest_is_instrumented_including_errors(small_requests):
    manager = MapSessionManager(
        default_config=SessionConfig(num_shards=1, batch_size=1)
    )
    manager.ingest(small_requests[0])
    with pytest.raises(KeyError):
        manager.ingest(
            ScanRequest(
                session_id="never-created",
                cloud=small_requests[0].cloud,
                origin=small_requests[0].origin,
            ),
            auto_create=False,
        )
    manager.shutdown()
    rollups = {r.operation: r for r in manager.metrics.totals("map")}
    assert rollups["ingest"].outcomes["ok"] == 1
    assert rollups["batch_apply"].count == 1
    failed = {
        r.operation: r for r in manager.metrics.totals("never-created")
    }
    assert failed["ingest"].outcomes["error"] == 1


def test_disabled_store_skips_manager_instrumentation(small_requests):
    store = MetricsStore(enabled=False)
    manager = MapSessionManager(
        default_config=SessionConfig(num_shards=1, batch_size=1), metrics=store
    )
    manager.ingest(small_requests[0])
    manager.shutdown()
    assert store.total_requests() == 0
    assert manager.service_stats.session("map").scans_ingested == 1


# ---------------------------------------------------------------------------
# SessionConfig QoS field validation
# ---------------------------------------------------------------------------

def test_session_config_validates_qos_fields():
    config = SessionConfig(tenant="acme", quota_points_per_s=10.0)
    assert config.resolved_tenant("map") == "acme"
    assert SessionConfig().resolved_tenant("map") == "map"  # default: isolated
    with pytest.raises(ValueError):
        SessionConfig(quota_points_per_s=-1.0)
    with pytest.raises(ValueError):
        SessionConfig(quota_burst_s=0.0)


# ---------------------------------------------------------------------------
# Regression: a freshly-registered, never-driven session must render
# ---------------------------------------------------------------------------

def test_empty_session_stats_render_without_division_errors():
    """A session registered but never driven has every denominator at zero;
    render() and to_dict() must report zeros, not raise."""
    service = ServiceStats()
    service.register(SessionStats(session_id="fresh", num_shards=2))
    rendered = service.render()
    assert "fresh" in rendered
    block = service.session("fresh")
    for ratio in (
        block.dedup_fraction,
        block.updates_per_scan,
        block.fanout_fraction,
        block.frontend_fraction,
        block.overlap_ratio,
        block.shard_utilization,
        block.wall_updates_per_second,
        block.mean_admission_wait_seconds,
        block.modelled_updates_per_second(1e9),
    ):
        assert ratio == 0.0
    payload = service.to_dict()
    assert payload["totals"]["cache_hit_rate"] == 0.0
    assert payload["sessions"][0]["queries"]["cache_hit_rate"] == 0.0
    # The service-level table block renders even with zero sessions.
    assert "Serving: ingestion per session" in ServiceStats().render()
