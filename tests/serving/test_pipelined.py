"""Pipelined (double-buffered) ingestion: ticket API, barriers, crashes.

The map-level pipelined == serial equivalence lives in
``test_equivalence_property.py``; this module covers the machinery that makes
it true: the ``apply_async``/``drain`` ticket protocol, the one-in-flight
invariant, the read-side barriers, the overlap accounting, and -- the part
that must not regress -- how a worker that dies *with a batch in flight*
surfaces.
"""

from __future__ import annotations

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.serving import (
    MapSession,
    ProcessPoolBackend,
    ScanRequest,
    SessionConfig,
    ShardBackendError,
    ShardQueryRequest,
    ShardUpdateBatch,
    make_backend,
)

CONFIG = DEFAULT_CONFIG.with_resolution(0.25)

ALL_BACKENDS = ["inline", "thread", "process"]


def _batch_for_shard(backend, shard_id, n=64, occupied=True):
    """A wire batch of ``n`` distinct voxels that route to ``shard_id``."""
    from repro.core.address_gen import AddressGenerator

    generator = AddressGenerator(CONFIG.resolution_m, CONFIG.tree_depth, CONFIG.num_pes)
    converter = generator.converter
    entries = []
    index = 0
    while len(entries) < n and index < 200000:
        x = -7.0 + 0.03 * index
        key = converter.coord_to_key(x, 0.4, 0.2)
        if generator.shard_index(key, backend.num_shards, 12) == shard_id:
            entries.append((key.x, key.y, key.z, occupied))
        index += 1
    assert len(entries) == n, "could not route enough keys to the shard"
    return ShardUpdateBatch(shard_id=shard_id, entries=tuple(entries))


# ---------------------------------------------------------------------------
# Ticket protocol
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_apply_async_drain_matches_blocking_apply(name):
    with make_backend(name, CONFIG, num_shards=2) as backend:
        batches = [_batch_for_shard(backend, shard, n=8) for shard in range(2)]
        ticket = backend.apply_async(batches)
        assert ticket.shard_ids == (0, 1)
        results = backend.drain(ticket)
        assert sorted(result.shard_id for result in results) == [0, 1]
        for result in results:
            assert result.updates_applied == 8
            assert result.generation == 1
            assert backend.generation_of(result.shard_id) == 1
        assert backend.in_flight is None
        # Exactly what the blocking wrapper produces on a fresh backend.
        with make_backend(name, CONFIG, num_shards=2) as reference:
            blocking = reference.apply_shard_batches(
                [_batch_for_shard(reference, shard, n=8) for shard in range(2)]
            )
        assert [(r.shard_id, r.updates_applied, r.generation) for r in results] == [
            (r.shard_id, r.updates_applied, r.generation) for r in blocking
        ]


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_one_in_flight_invariant_enforced(name):
    with make_backend(name, CONFIG, num_shards=2) as backend:
        ticket = backend.apply_async([_batch_for_shard(backend, 0, n=4)])
        with pytest.raises(ShardBackendError, match="one-in-flight"):
            backend.apply_async([_batch_for_shard(backend, 1, n=4)])
        backend.drain(ticket)
        # Drained: the next dispatch is legal again.
        backend.drain(backend.apply_async([_batch_for_shard(backend, 1, n=4)]))


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_generations_adopted_only_at_drain(name):
    """Parent-side stamps move atomically when the ticket settles, never
    mid-flight -- the 'no half-applied generation' half of the invariant.
    (The inline backend applies eagerly, but its bookkeeping still waits.)"""
    with make_backend(name, CONFIG, num_shards=2) as backend:
        ticket = backend.apply_async(
            [_batch_for_shard(backend, shard, n=16) for shard in range(2)]
        )
        # Peek at the raw parent-side stamps without triggering the barrier.
        assert backend._generations == [0, 0]
        backend.drain(ticket)
        assert backend._generations == [1, 1]


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_all_empty_async_flush_settles_immediately(name):
    with make_backend(name, CONFIG, num_shards=2) as backend:
        ticket = backend.apply_async(
            [ShardUpdateBatch(shard_id=0, entries=()), ShardUpdateBatch(shard_id=1, entries=())]
        )
        assert ticket.shard_ids == ()
        assert backend.in_flight is None
        assert backend.drain(ticket) == []
        assert backend.generation_of(0) == 0


def test_drain_of_unknown_ticket_raises():
    with make_backend("inline", CONFIG, num_shards=1) as backend:
        ticket = backend.apply_async([_batch_for_shard(backend, 0, n=4)])
        backend.drain(ticket)
        with pytest.raises(ShardBackendError, match="not in flight"):
            backend.drain(ticket)  # double redemption
        assert backend.drain() == []  # ticketless drain of an idle backend


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_barrier_settled_acks_stay_reserved_for_the_ticket_owner(name):
    """A ticketless drain must not steal acknowledgements a barrier parked
    for a still-outstanding ticket -- the pipelined pipeline finalizes its
    batch later and needs them (a stolen ack would crash its flush)."""
    with make_backend(name, CONFIG, num_shards=2) as backend:
        ticket = backend.apply_async([_batch_for_shard(backend, 0, n=8)])
        backend.barrier((0,))  # settles and parks the acknowledgements
        assert backend.drain() == []  # ticketless drain leaves them parked
        results = backend.drain(ticket)  # the owner still redeems them
        assert [result.shard_id for result in results] == [0]
        assert results[0].updates_applied == 8
        assert backend._parked is None


def test_abandoned_ticket_acks_are_overwritten_not_leaked():
    """A caller that keeps dispatching without ever draining must not grow
    the parked-acknowledgement store: one slot, latest settle wins."""
    with make_backend("inline", CONFIG, num_shards=1) as backend:
        last = None
        for _ in range(50):
            last = backend.apply_async([ShardUpdateBatch(shard_id=0, entries=())])
        assert backend._parked == (last.ticket_id, [])
        assert backend.drain(last) == []


# ---------------------------------------------------------------------------
# Read-side barriers
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_query_barriers_on_inflight_ticket(name):
    """A query touching an in-flight shard settles the whole ticket first,
    so it answers post-apply and generation stamps move atomically."""
    with make_backend(name, CONFIG, num_shards=2) as backend:
        batches = [_batch_for_shard(backend, shard, n=16) for shard in range(2)]
        ticket = backend.apply_async(batches)
        x, y, z, _ = batches[0].entries[0]
        answer = backend.query_key(ShardQueryRequest(shard_id=0, key=(x, y, z)))
        assert answer.status == "occupied"
        assert answer.generation == 1
        assert backend.in_flight is None
        # The *other* shard's stamp moved in the same settle.
        assert backend._generations == [1, 1]
        # The ticket owner still gets its acknowledgements.
        results = backend.drain(ticket)
        assert sorted(result.shard_id for result in results) == [0, 1]


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_barrier_ignores_untouched_shards(name):
    with make_backend(name, CONFIG, num_shards=2) as backend:
        ticket = backend.apply_async([_batch_for_shard(backend, 0, n=8)])
        backend.barrier((1,))  # shard 1 has nothing in flight
        assert backend.in_flight is not None
        backend.barrier((0,))
        assert backend.in_flight is None
        assert len(backend.drain(ticket)) == 1


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_generation_of_barriers_on_inflight_ticket(name):
    with make_backend(name, CONFIG, num_shards=2) as backend:
        backend.apply_async([_batch_for_shard(backend, 0, n=8)])
        assert backend.generation_of(0) == 1  # settled by the barrier
        assert backend.in_flight is None


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_export_barriers_on_inflight_ticket(name):
    with make_backend(name, CONFIG, num_shards=2) as backend:
        backend.apply_async([_batch_for_shard(backend, 0, n=8)])
        trees = backend.export_all()
        assert backend.in_flight is None
        assert sum(sum(1 for _ in tree.iter_leafs()) for tree in trees) > 0


# ---------------------------------------------------------------------------
# Pipelined pipeline behavior (session level)
# ---------------------------------------------------------------------------
def _requests(count, points_per_scan=20, seed=7):
    import numpy as np

    rng = np.random.default_rng(seed)
    from repro.octomap import PointCloud

    return [
        ScanRequest(
            session_id="map",
            cloud=PointCloud(rng.uniform(-3.0, 3.0, size=(points_per_scan, 3))),
            origin=(0.0, 0.1 * index, 0.2),
            max_range=5.0,
            request_id=index,
        )
        for index in range(count)
    ]


def test_pipelined_flush_keeps_one_batch_in_flight_and_reports_in_order():
    config = SessionConfig(
        num_shards=2, backend="inline", pipelined=True, batch_size=1
    ).with_resolution(0.25)
    with MapSession("map", config) as session:
        for request in _requests(4):
            session.submit(request)
        # First flush primes the pipe (dispatches one batch, prepares the
        # next) and returns the first completed report.
        reports = [session.flush()]
        while session.pending_requests() or session.pipeline.in_flight_requests():
            report = session.flush()
            if report is not None:
                reports.append(report)
        assert [report.batch_id for report in reports] == [0, 1, 2, 3]
        assert [rid for report in reports for rid in report.request_ids] == [0, 1, 2, 3]
        assert all(report.pipelined for report in reports)
        # Every front end but the primer's ran during an in-flight apply.
        assert [report.overlapped for report in reports] == [False, True, True, True]
        assert session.stats.pipelined_batches == 4
        assert 0.0 < session.stats.overlap_ratio < 1.0


def test_pipelined_flush_all_drains_the_tail():
    config = SessionConfig(
        num_shards=2, backend="inline", pipelined=True, batch_size=2
    ).with_resolution(0.25)
    with MapSession("map", config) as session:
        for request in _requests(5):
            session.submit(request)
        reports = session.flush_all()
        assert session.pending_requests() == 0
        assert session.pipeline.in_flight_requests() == 0
        assert sorted(rid for report in reports for rid in report.request_ids) == list(range(5))


def test_manager_round_robin_drains_pipelined_sessions():
    from repro.serving import MapSessionManager

    config = SessionConfig(
        num_shards=2, backend="inline", pipelined=True, batch_size=1
    ).with_resolution(0.25)
    with MapSessionManager(default_config=config) as manager:
        for index, request in enumerate(_requests(6)):
            session_id = f"s{index % 2}"
            manager.submit(
                ScanRequest(
                    session_id=session_id,
                    cloud=request.cloud,
                    origin=request.origin,
                    max_range=request.max_range,
                )
            )
        reports = manager.flush_all()
        assert len(reports) == 6
        assert manager.pending_requests() == 0
        for session_id in manager.session_ids():
            assert manager.get_session(session_id).pipeline.in_flight_requests() == 0


# ---------------------------------------------------------------------------
# Crash injection: worker death with a batch in flight
# ---------------------------------------------------------------------------
def test_worker_death_with_batch_in_flight_surfaces_on_next_operation():
    backend = ProcessPoolBackend(CONFIG, num_shards=2)
    try:
        ticket = backend.apply_async(
            [_batch_for_shard(backend, shard, n=256) for shard in range(2)]
        )
        backend.processes[0].terminate()
        backend.processes[0].join(timeout=5.0)
        # The drain either sees the broken pipe, or -- if the worker's ack
        # raced ahead of the kill -- the very next interaction's health check
        # reports the death.  Either way the error never goes unnoticed.
        with pytest.raises(ShardBackendError, match="worker process died"):
            backend.drain(ticket)
            backend.query_key(ShardQueryRequest(shard_id=1, key=(5, 5, 5)))
        assert backend.failed is not None or not backend.processes[0].is_alive()
    finally:
        backend.close()
    assert all(not process.is_alive() for process in backend.processes)


def test_worker_death_mid_flight_fail_stops_queries_on_every_shard():
    """No query may return a half-applied generation: once the drain failed,
    even shards whose slice *did* apply refuse to answer (fail-stop), because
    the map as a whole no longer matches the sequential reference."""
    backend = ProcessPoolBackend(CONFIG, num_shards=2)
    try:
        backend.apply_async(
            [_batch_for_shard(backend, shard, n=256) for shard in range(2)]
        )
        backend.processes[0].terminate()
        backend.processes[0].join(timeout=5.0)
        with pytest.raises(ShardBackendError):
            backend.drain()
            backend.query_key(ShardQueryRequest(shard_id=0, key=(1, 1, 1)))
        # Both shards now refuse to answer -- the surviving worker's region
        # too.  Which message they refuse with depends on who saw the death:
        # a failed drain fail-stops the backend, while an ack that raced
        # ahead of the kill leaves the health check to report the dead
        # worker on every later interaction.  Either way, no query returns.
        expected = "fail-stop" if backend.failed is not None else "worker process died"
        for shard_id in range(2):
            with pytest.raises(ShardBackendError, match=expected):
                backend.query_key(ShardQueryRequest(shard_id=shard_id, key=(1, 1, 1)))
        if backend.failed is not None:
            # Fail-stop also gates the no-round-trip read (cache validation).
            with pytest.raises(ShardBackendError, match="fail-stop"):
                backend.generation_of(1)
    finally:
        backend.close()


def test_close_with_batch_in_flight_reaps_all_children():
    backend = ProcessPoolBackend(CONFIG, num_shards=3)
    processes = list(backend.processes)
    backend.apply_async([_batch_for_shard(backend, 0, n=256)])
    backend.close()
    assert all(not process.is_alive() for process in processes)
    assert backend.in_flight is None


def test_pipelined_session_surfaces_worker_death_and_reaps_on_close():
    config = SessionConfig(
        num_shards=2, backend="process", pipelined=True, batch_size=1
    ).with_resolution(0.25)
    session = MapSession("map", config)
    try:
        for request in _requests(4, points_per_scan=60):
            session.submit(request)
        session.flush()  # leaves a batch in flight
        assert session.backend.in_flight is not None
        for process in session.backend.processes:
            process.terminate()
            process.join(timeout=5.0)
        # The in-flight death surfaces on the next operation (here a query,
        # whose barrier settles the dead ticket) -- never a silent answer.
        with pytest.raises(ShardBackendError):
            session.query(0.5, 0.5, 0.2)
        with pytest.raises(ShardBackendError):
            session.flush_all()
    finally:
        processes = list(session.backend.processes)
        session.close()
    assert all(not process.is_alive() for process in processes)
