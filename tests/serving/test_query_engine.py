"""Query engine: point, batch, bounding-box and collision-raycast queries."""

from __future__ import annotations

import math

import pytest

from repro.serving import MapSession, SessionConfig


@pytest.fixture
def warm_session(small_requests):
    session = MapSession("map", SessionConfig(num_shards=2, batch_size=4))
    for request in small_requests:
        session.submit(request)
    session.flush_all()
    return session


def test_point_query_matches_exported_tree(warm_session):
    tree = warm_session.export_octree()
    for point in ((1.2, 0.3, 0.2), (0.0, 0.0, 0.2), (-2.0, 1.5, 0.0), (9.0, 9.0, 9.0)):
        assert warm_session.query(*point).status == tree.classify(*point)


def test_out_of_volume_query_is_unknown(warm_session):
    limit = warm_session.router.converter.max_coordinate
    response = warm_session.query(limit * 2.0, 0.0, 0.0)
    assert response.status == "unknown"
    assert response.probability is None
    assert response.shard_id == -1


def test_batch_query_matches_pointwise(warm_session):
    points = [(0.4 * index, 0.1, 0.2) for index in range(-5, 6)]
    batch = warm_session.query_batch(points)
    assert len(batch) == len(points)
    for point, response in zip(points, batch):
        assert response.status == warm_session.query(*point).status


def test_bbox_counts_add_up(warm_session):
    summary = warm_session.query_bbox((-1.0, -1.0, 0.0), (1.0, 1.0, 0.4))
    assert summary.occupied + summary.free + summary.unknown == summary.voxels_scanned
    assert summary.voxels_scanned > 0


def test_bbox_guardrail_and_validation(warm_session):
    warm_session.query_engine.max_box_voxels = 10
    with pytest.raises(ValueError, match="guardrail"):
        warm_session.query_bbox((-5.0, -5.0, -5.0), (5.0, 5.0, 5.0))
    with pytest.raises(ValueError, match="inverted box"):
        warm_session.query_bbox((1.0, 0.0, 0.0), (-1.0, 0.0, 0.0))


def test_raycast_hits_the_ring_wall(warm_session):
    # The fixture scans observe a ring of wall points at radius ~2.5 m; a ray
    # fired outwards from the centre must collide with it.
    response = warm_session.raycast((0.0, 0.0, 0.2), (1.0, 0.0, 0.0), 6.0)
    assert response.hit
    assert response.hit_point is not None
    assert 1.5 < response.distance < 3.5
    assert response.voxels_traversed > 0

    # Distance is consistent with the returned hit point.
    dx = [response.hit_point[axis] - (0.0, 0.0, 0.2)[axis] for axis in range(3)]
    assert math.sqrt(sum(d * d for d in dx)) == pytest.approx(response.distance)


def test_raycast_miss_reports_full_range(warm_session):
    response = warm_session.raycast((0.0, 0.0, 0.2), (0.0, 0.0, 1.0), 1.0)
    assert not response.hit
    assert response.hit_point is None
    assert response.distance == pytest.approx(1.0)


def test_raycast_agrees_with_software_cast(warm_session):
    tree = warm_session.export_octree()
    origin, direction, max_range = (0.0, 0.0, 0.2), (1.0, 0.0, 0.0), 6.0
    service = warm_session.raycast(origin, direction, max_range)
    software = tree.cast_ray(origin, direction, max_range=max_range)
    assert service.hit == software.hit
    if service.hit:
        for axis in range(3):
            assert service.hit_point[axis] == pytest.approx(software.end_point[axis], abs=0.21)


def test_raycast_clipped_miss_reports_traversed_distance(warm_session):
    """Regression: a no-hit ray clipped at the addressable-volume boundary
    used to report ``distance=max_range``, claiming free space beyond the
    volume that was never inspected."""
    from repro.octomap.scan_insertion import clip_segment_to_volume

    converter = warm_session.router.converter
    limit = converter.max_coordinate
    origin = (limit - 10.0, 0.0, 0.2)  # near the +x boundary, unobserved
    max_range = 20.0  # reaches well past the boundary
    end = (origin[0] + max_range, origin[1], origin[2])
    expected = clip_segment_to_volume(converter, origin, end)[0] - origin[0]
    assert 0.0 < expected < max_range, "the ray really was clipped"

    response = warm_session.raycast(origin, (1.0, 0.0, 0.0), max_range)
    assert not response.hit
    # The traversable segment ends at the clipped boundary, not at max_range.
    assert response.distance == pytest.approx(expected, rel=1e-6)
    assert response.distance < max_range
    # Consistency: the reported distance covers the voxels actually walked.
    assert response.voxels_traversed <= math.ceil(response.distance / converter.resolution) + 2

    # An unclipped miss still reports the full range (pinned elsewhere too).
    inside = warm_session.raycast((0.0, 0.0, 0.2), (0.0, 0.0, 1.0), 1.0)
    assert not inside.hit
    assert inside.distance == pytest.approx(1.0)


def test_raycast_from_outside_the_volume_is_a_clean_miss(warm_session):
    limit = warm_session.router.converter.max_coordinate
    response = warm_session.raycast((limit + 10.0, 0.0, 0.0), (-1.0, 0.0, 0.0), 5.0)
    assert not response.hit
    assert response.voxels_traversed == 0


def test_bbox_only_counts_voxel_centres_inside_the_box(warm_session):
    resolution = warm_session.router.converter.resolution  # 0.2 m
    # A box strictly between two voxel-centre planes contains no centres.
    empty = warm_session.query_bbox((0.21, 0.21, 0.21), (0.29, 0.29, 0.29))
    assert empty.voxels_scanned == 0
    assert empty.occupied == empty.free == empty.unknown == 0
    # A grid-aligned 2x2x2-centre box scans exactly eight voxels.
    aligned = warm_session.query_bbox((0.0, 0.0, 0.0), (2 * resolution, 2 * resolution, 2 * resolution))
    assert aligned.voxels_scanned == 8


def test_raycast_validation(warm_session):
    with pytest.raises(ValueError, match="max_range"):
        warm_session.raycast((0.0, 0.0, 0.0), (1.0, 0.0, 0.0), 0.0)
    with pytest.raises(ValueError, match="non-zero"):
        warm_session.raycast((0.0, 0.0, 0.0), (0.0, 0.0, 0.0), 1.0)


def test_classify_and_collision_shorthands(warm_session):
    assert warm_session.query_engine.classify(0.0, 0.0, 0.2) in ("occupied", "free", "unknown")
    occupied_point = None
    for leaf in warm_session.export_octree().iter_occupied():
        occupied_point = leaf.center
        break
    assert occupied_point is not None
    assert warm_session.query_engine.is_colliding(*occupied_point)


# ---------------------------------------------------------------------------
# Streaming bounding-box sweeps (iter_bbox)
# ---------------------------------------------------------------------------
def test_iter_bbox_chunks_are_bounded_and_sum_to_the_aggregate(warm_session):
    minimum, maximum = (-1.0, -1.0, 0.0), (1.0, 1.0, 0.4)
    summary = warm_session.query_bbox(minimum, maximum)
    chunks = list(warm_session.query_engine.iter_bbox(minimum, maximum, chunk_voxels=7))
    assert all(len(chunk.voxels) <= 7 for chunk in chunks)
    assert [chunk.index for chunk in chunks] == list(range(len(chunks)))
    assert all(chunk.voxels_total == summary.voxels_scanned for chunk in chunks)
    assert sum(len(chunk.voxels) for chunk in chunks) == summary.voxels_scanned
    assert sum(chunk.occupied for chunk in chunks) == summary.occupied
    assert sum(chunk.free for chunk in chunks) == summary.free
    assert sum(chunk.unknown for chunk in chunks) == summary.unknown


def test_iter_bbox_voxels_match_pointwise_queries(warm_session):
    chunks = warm_session.query_engine.iter_bbox((-0.6, -0.6, 0.0), (0.6, 0.6, 0.4))
    for chunk in chunks:
        for x, y, z, status in chunk.voxels:
            assert warm_session.query(x, y, z).status == status


def test_iter_bbox_counts_only_mode_keeps_chunks_light(warm_session):
    chunks = list(
        warm_session.query_engine.iter_bbox(
            (-1.0, -1.0, 0.0), (1.0, 1.0, 0.4), chunk_voxels=16, include_voxels=False
        )
    )
    assert all(chunk.voxels == () for chunk in chunks)
    assert sum(chunk.occupied + chunk.free + chunk.unknown for chunk in chunks) > 0


def test_iter_bbox_empty_box_yields_one_empty_chunk(warm_session):
    chunks = list(warm_session.query_engine.iter_bbox((0.21, 0.21, 0.21), (0.29, 0.29, 0.29)))
    assert len(chunks) == 1
    assert chunks[0].voxels == ()
    assert chunks[0].voxels_total == 0


def test_iter_bbox_validates_eagerly(warm_session):
    with pytest.raises(ValueError, match="chunk_voxels"):
        warm_session.query_engine.iter_bbox((0.0, 0.0, 0.0), (1.0, 1.0, 1.0), chunk_voxels=0)
    with pytest.raises(ValueError, match="inverted box"):
        # Before the first chunk is requested, not at first iteration.
        warm_session.query_engine.iter_bbox((1.0, 0.0, 0.0), (-1.0, 0.0, 0.0))
    warm_session.query_engine.max_box_voxels = 10
    with pytest.raises(ValueError, match="guardrail"):
        warm_session.query_engine.iter_bbox((-5.0, -5.0, -5.0), (5.0, 5.0, 5.0))
