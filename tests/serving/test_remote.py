"""Unit tests for the socket shard-worker stack (``repro.serving.remote``).

Bottom-up coverage of every layer the failover path stands on: the framed
transport and its failure taxonomy, the shard worker server protocol, the
worker registry's re-homing policy, the replay log, snapshot/restore
round-trips, and the socket backend's worker lifecycle (reaping owned
workers, detaching from external ones, snapshot cadence).
"""

from __future__ import annotations

import contextlib
import pickle
import socket
import struct
import time

import pytest

from repro.core.address_gen import AddressGenerator
from repro.core.config import DEFAULT_CONFIG
from repro.core.verification import compare_trees
from repro.serving import ShardBackendError, ShardUpdateBatch, make_backend
from repro.serving.remote import (
    MAX_FRAME_BYTES,
    NoLiveWorkerError,
    ReplayLog,
    ShardWorkerServer,
    SocketBackend,
    Transport,
    TransportClosed,
    TransportError,
    WorkerEndpoint,
    WorkerRegistry,
    spawn_local_worker,
)
from repro.serving.sharding import MapShardWorker
from repro.serving.types import ShardSnapshot

CONFIG = DEFAULT_CONFIG.with_resolution(0.25)

_HEADER = struct.Struct("!I")


def _batch(shard_id: int, n: int = 8, salt: int = 0) -> ShardUpdateBatch:
    """A deterministic non-empty update batch addressed to ``shard_id``."""
    converter = AddressGenerator(
        CONFIG.resolution_m, CONFIG.tree_depth, CONFIG.num_pes
    ).converter
    entries = []
    for index in range(n):
        key = converter.coord_to_key(
            -3.0 + 0.3 * (index + n * salt), 0.4 * shard_id + 0.1, 0.2
        )
        entries.append((key.x, key.y, key.z, True))
    return ShardUpdateBatch(shard_id=shard_id, entries=tuple(entries))


def _assert_trees_equal(expected, actual) -> None:
    report = compare_trees(expected, actual, 0.0)
    assert report.equivalent, report.summary()
    assert report.max_abs_error == 0.0


# ---------------------------------------------------------------------------
# Transport framing
# ---------------------------------------------------------------------------
@contextlib.contextmanager
def _transport_pair():
    """Two connected framed transports over a local socket pair."""
    left, right = socket.socketpair()
    a, b = Transport(left, timeout_s=5.0), Transport(right, timeout_s=5.0)
    try:
        yield a, b
    finally:
        a.close()
        b.close()


class TestTransport:
    def test_roundtrip_preserves_message(self):
        with _transport_pair() as (a, b):
            a.send(("apply", {"shard": 3, "entries": (1, 2, 3)}))
            assert b.recv() == ("apply", {"shard": 3, "entries": (1, 2, 3)})

    def test_back_to_back_messages_keep_their_boundaries(self):
        with _transport_pair() as (a, b):
            for index in range(16):
                a.send(("ping", index))
            assert [b.recv() for _ in range(16)] == [("ping", i) for i in range(16)]

    def test_clean_close_is_transport_closed(self):
        with _transport_pair() as (a, b):
            a.close()
            with pytest.raises(TransportClosed):
                b.recv()

    def test_torn_frame_is_an_error_not_a_clean_close(self):
        """A peer dying mid-frame must be distinguishable from clean EOF --
        the failover logic treats only the torn case as a live recovery."""
        left, right = socket.socketpair()
        reader = Transport(right, timeout_s=5.0)
        try:
            body = pickle.dumps(("apply", None))
            left.sendall(_HEADER.pack(len(body)) + body[: len(body) // 2])
            left.close()
            with pytest.raises(TransportError, match="mid-message") as info:
                reader.recv()
            assert not isinstance(info.value, TransportClosed)
        finally:
            reader.close()

    def test_receive_timeout_is_a_transport_error(self):
        with _transport_pair() as (a, b):
            b.settimeout(0.05)
            with pytest.raises(TransportError, match="timed out"):
                b.recv()

    def test_garbage_length_prefix_fails_fast(self):
        """A corrupted stream announcing a multi-gigabyte frame must error
        immediately instead of blocking for bytes that never come."""
        left, right = socket.socketpair()
        reader = Transport(right, timeout_s=5.0)
        try:
            left.sendall(_HEADER.pack(MAX_FRAME_BYTES + 1))
            with pytest.raises(TransportError, match="exceeds"):
                reader.recv()
        finally:
            left.close()
            reader.close()

    def test_oversized_send_rejected_locally(self, monkeypatch):
        import repro.serving.remote.transport as transport_module

        monkeypatch.setattr(transport_module, "MAX_FRAME_BYTES", 16)
        with _transport_pair() as (a, _b):
            with pytest.raises(ValueError, match="frame limit"):
                a.send(("apply", b"x" * 64))

    def test_connect_to_dead_port_raises_transport_error(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(TransportError, match="cannot connect"):
            Transport.connect("127.0.0.1", port, connect_timeout_s=1.0)


# ---------------------------------------------------------------------------
# Shard worker server protocol
# ---------------------------------------------------------------------------
@contextlib.contextmanager
def _server_connection():
    server = ShardWorkerServer().start()
    transport = Transport.connect(server.host, server.port, timeout_s=10.0)
    try:
        yield server, transport
    finally:
        transport.close()
        server.shutdown()


def _ok(reply):
    status, payload = reply
    assert status == "ok", payload
    return payload


class TestShardWorkerServer:
    def test_hello_reports_identity_and_hosted_shards(self):
        with _server_connection() as (server, transport):
            hello = _ok(transport.request("hello"))
            assert hello == {"worker_id": server.worker_id, "shards": []}
            _ok(transport.request("attach", (2, CONFIG)))
            assert _ok(transport.request("hello"))["shards"] == [2]

    def test_attach_apply_query_export_roundtrip(self):
        with _server_connection() as (_server, transport):
            _ok(transport.request("attach", (0, CONFIG)))
            batch = _batch(0)
            ack = _ok(transport.request("apply", batch))
            assert ack.generation == 1
            assert ack.updates_applied == len(batch)
            exported = _ok(transport.request("export", 0))
            assert exported.generation == 1
            assert exported.tree.size() > 0

    def test_restore_rehydrates_a_snapshot_exactly(self):
        local = MapShardWorker(1, CONFIG)
        local.apply_message(_batch(1))
        local.apply_message(_batch(1, salt=1))
        snapshot = local.snapshot_message()
        with _server_connection() as (_server, transport):
            assert _ok(transport.request("restore", (snapshot, CONFIG))) == 1
            exported = _ok(transport.request("export", 1))
            assert exported.generation == local.generation
            _assert_trees_equal(local.export_octree(), exported.tree)

    def test_detached_shard_is_gone(self):
        with _server_connection() as (_server, transport):
            _ok(transport.request("attach", (0, CONFIG)))
            _ok(transport.request("detach", 0))
            status, payload = transport.request("apply", _batch(0))
            assert status == "error"
            assert "not hosted" in payload["message"]

    def test_unknown_verb_reports_error_with_traceback(self):
        with _server_connection() as (_server, transport):
            status, payload = transport.request("bogus")
            assert status == "error"
            assert "unknown worker command" in payload["message"]
            assert "ValueError" in payload["traceback"]

    def test_worker_exception_is_reported_not_fatal(self):
        with _server_connection() as (_server, transport):
            status, _ = transport.request("apply", _batch(0))  # never attached
            assert status == "error"
            # The connection must survive a worker-side error.
            assert _ok(transport.request("ping")) == "pong"

    def test_one_endpoint_can_cohost_several_shards(self):
        """After a failover, a survivor hosts a re-homed shard next to its
        own; the server side must keep the two cleanly separated."""
        with _server_connection() as (_server, transport):
            _ok(transport.request("attach", (0, CONFIG)))
            _ok(transport.request("attach", (1, CONFIG)))
            _ok(transport.request("apply", _batch(0)))
            ack = _ok(transport.request("apply", _batch(1, salt=3)))
            assert ack.shard_id == 1
            tree_0 = _ok(transport.request("export", 0)).tree
            tree_1 = _ok(transport.request("export", 1)).tree
            assert tree_0.size() != 0 and tree_1.size() != 0
            report = compare_trees(tree_0, tree_1, 0.0)
            assert not report.equivalent  # genuinely distinct shard state

    def test_stop_command_shuts_the_server_down(self):
        server = ShardWorkerServer().start()
        transport = Transport.connect(server.host, server.port, timeout_s=10.0)
        try:
            assert _ok(transport.request("stop")) is None
        finally:
            transport.close()
        # The ack is sent *before* the server tears itself down; give the
        # connection thread a moment to finish the shutdown.
        deadline = time.monotonic() + 5.0
        while server.alive and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not server.alive
        with pytest.raises(TransportError):
            Transport.connect(server.host, server.port, connect_timeout_s=1.0)

    def test_kill_drops_port_and_state(self):
        server = ShardWorkerServer().start()
        transport = Transport.connect(server.host, server.port, timeout_s=10.0)
        _ok(transport.request("attach", (0, CONFIG)))
        server.kill()
        transport.close()
        assert not server.alive
        assert server._workers == {}
        with pytest.raises(TransportError):
            Transport.connect(server.host, server.port, connect_timeout_s=1.0)


# ---------------------------------------------------------------------------
# Worker registry
# ---------------------------------------------------------------------------
def _endpoints(*ports: int):
    return [WorkerEndpoint("127.0.0.1", port) for port in ports]


class TestWorkerEndpoint:
    def test_parse_host_port(self):
        endpoint = WorkerEndpoint.parse("10.0.0.7:9001")
        assert (endpoint.host, endpoint.port) == ("10.0.0.7", 9001)
        assert str(endpoint) == "10.0.0.7:9001"

    def test_parse_passes_instances_through(self):
        endpoint = WorkerEndpoint("h", 1)
        assert WorkerEndpoint.parse(endpoint) is endpoint

    @pytest.mark.parametrize("text", ["9001", ":9001", "host:", "host:abc"])
    def test_parse_rejects_malformed_endpoints(self, text):
        with pytest.raises(ValueError):
            WorkerEndpoint.parse(text)


class TestWorkerRegistry:
    def test_first_endpoints_are_primaries_rest_standbys(self):
        registry = WorkerRegistry(_endpoints(1, 2, 3, 4), num_shards=2)
        assert registry.assignment() == {0: _endpoints(1)[0], 1: _endpoints(2)[0]}
        assert registry.standbys() == _endpoints(3, 4)

    def test_rejects_fewer_endpoints_than_shards(self):
        with pytest.raises(ValueError, match="at least 2"):
            WorkerRegistry(_endpoints(1), num_shards=2)

    def test_rejects_duplicate_endpoints(self):
        with pytest.raises(ValueError, match="duplicate"):
            WorkerRegistry(_endpoints(1, 1), num_shards=1)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="at least 1"):
            WorkerRegistry(_endpoints(1), num_shards=0)

    def test_reassign_prefers_an_idle_standby(self):
        registry = WorkerRegistry(_endpoints(1, 2, 3), num_shards=2)
        registry.mark_dead(registry.endpoint_for(0))
        assert registry.reassign(0) == _endpoints(3)[0]
        assert registry.standbys() == []

    def test_reassign_cohosts_on_least_loaded_survivor(self):
        registry = WorkerRegistry(_endpoints(1, 2, 3), num_shards=3)
        registry.mark_dead(registry.endpoint_for(0))
        assert registry.reassign(0) in _endpoints(2, 3)
        # Next death must co-host on the worker with fewer shards.
        loaded = registry.endpoint_for(0)
        registry.mark_dead(registry.endpoint_for(1))
        target = registry.reassign(1)
        assert target != loaded and target in _endpoints(2, 3)

    def test_reassign_with_no_survivors_raises(self):
        registry = WorkerRegistry(_endpoints(1, 2), num_shards=2)
        registry.mark_dead(_endpoints(1)[0])
        registry.mark_dead(_endpoints(2)[0])
        with pytest.raises(NoLiveWorkerError, match="no live worker"):
            registry.reassign(0)

    def test_dead_standby_is_never_a_target(self):
        registry = WorkerRegistry(_endpoints(1, 2, 3), num_shards=1)
        registry.mark_dead(_endpoints(2)[0])
        registry.mark_dead(registry.endpoint_for(0))
        assert registry.reassign(0) == _endpoints(3)[0]

    def test_add_registers_a_late_standby(self):
        registry = WorkerRegistry(_endpoints(1), num_shards=1)
        registry.add("127.0.0.1:5")
        assert _endpoints(5)[0] in registry.standbys()
        with pytest.raises(ValueError, match="already registered"):
            registry.add("127.0.0.1:5")


# ---------------------------------------------------------------------------
# Replay log
# ---------------------------------------------------------------------------
class TestReplayLog:
    def test_tails_accumulate_per_shard_in_order(self):
        log = ReplayLog(2)
        first, second, other = _batch(0), _batch(0, salt=1), _batch(1)
        log.record(first)
        log.record(other)
        log.record(second)
        assert log.tail(0) == (first, second)
        assert log.tail(1) == (other,)
        assert log.tail_length(0) == 2
        assert log.tail_updates(0) == len(first) + len(second)

    def test_truncate_clears_only_one_shard(self):
        log = ReplayLog(2)
        log.record(_batch(0))
        log.record(_batch(1))
        log.truncate(0)
        assert log.tail(0) == ()
        assert log.tail_length(1) == 1

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ReplayLog(0)


# ---------------------------------------------------------------------------
# Snapshot / restore round-trips
# ---------------------------------------------------------------------------
class TestSnapshotRestore:
    def test_snapshot_restore_reproduces_the_shard_exactly(self):
        worker = MapShardWorker(0, CONFIG)
        for salt in range(3):
            worker.apply_message(_batch(0, salt=salt))
        snapshot = worker.snapshot_message()
        clone = MapShardWorker.from_snapshot(snapshot, CONFIG)
        assert clone.shard_id == worker.shard_id
        assert clone.generation == worker.generation
        assert clone.batches_applied == worker.batches_applied
        assert clone.updates_applied == worker.updates_applied
        _assert_trees_equal(worker.export_octree(), clone.export_octree())

    def test_replaying_the_tail_lands_on_the_live_state(self):
        """Snapshot mid-stream, replay the un-snapshotted batches on the
        restored clone: it must converge bit-for-bit with the worker that
        never died -- the core failover invariant."""
        live = MapShardWorker(0, CONFIG)
        batches = [_batch(0, salt=salt) for salt in range(5)]
        for batch in batches[:3]:
            live.apply_message(batch)
        snapshot = live.snapshot_message()
        for batch in batches[3:]:
            live.apply_message(batch)

        restored = MapShardWorker.from_snapshot(snapshot, CONFIG)
        for batch in batches[3:]:  # the replay tail
            restored.apply_message(batch)
        assert restored.generation == live.generation
        _assert_trees_equal(live.export_octree(), restored.export_octree())

    def test_queries_after_restore_match(self):
        worker = MapShardWorker(0, CONFIG)
        batch = _batch(0, n=12)
        worker.apply_message(batch)
        clone = MapShardWorker.from_snapshot(worker.snapshot_message(), CONFIG)
        converter = worker.accelerator.address_generator.converter
        from repro.octomap import OcTreeKey

        for key_x, key_y, key_z, _occupied in batch.entries:
            x, y, z = converter.key_to_coord(OcTreeKey(key_x, key_y, key_z))
            original = worker.query(x, y, z)
            restored = clone.query(x, y, z)
            assert restored.status == original.status
            assert restored.probability == pytest.approx(original.probability)

    def _snapshot(self) -> ShardSnapshot:
        worker = MapShardWorker(0, CONFIG)
        worker.apply_message(_batch(0))
        return worker.snapshot_message()

    def test_truncated_snapshot_payload_rejected(self):
        snapshot = self._snapshot()
        for keep in (0, 10, len(snapshot.payload) // 2, len(snapshot.payload) - 1):
            torn = ShardSnapshot(
                shard_id=snapshot.shard_id,
                generation=snapshot.generation,
                batches_applied=snapshot.batches_applied,
                updates_applied=snapshot.updates_applied,
                payload=snapshot.payload[:keep],
            )
            with pytest.raises(ValueError):
                MapShardWorker.from_snapshot(torn, CONFIG)

    def test_corrupted_snapshot_magic_rejected(self):
        snapshot = self._snapshot()
        corrupted = ShardSnapshot(
            shard_id=snapshot.shard_id,
            generation=snapshot.generation,
            batches_applied=snapshot.batches_applied,
            updates_applied=snapshot.updates_applied,
            payload=b"XX" + snapshot.payload[2:],
        )
        with pytest.raises(ValueError, match="magic"):
            MapShardWorker.from_snapshot(corrupted, CONFIG)

    def test_snapshot_with_trailing_garbage_rejected(self):
        snapshot = self._snapshot()
        bloated = ShardSnapshot(
            shard_id=snapshot.shard_id,
            generation=snapshot.generation,
            batches_applied=snapshot.batches_applied,
            updates_applied=snapshot.updates_applied,
            payload=snapshot.payload + b"\x00" * 5,
        )
        with pytest.raises(ValueError, match="trailing bytes"):
            MapShardWorker.from_snapshot(bloated, CONFIG)


# ---------------------------------------------------------------------------
# Socket backend lifecycle
# ---------------------------------------------------------------------------
class TestSocketBackendLifecycle:
    def test_close_reaps_owned_workers(self):
        backend = make_backend("socket", CONFIG, 2)
        assert isinstance(backend, SocketBackend)
        handles = list(backend.owned_workers)
        assert len(handles) == 3  # 2 primaries + 1 default standby
        backend.apply_shard_batches([_batch(0), _batch(1)])
        backend.close()
        assert all(not handle.alive for handle in handles)

    def test_external_workers_are_detached_not_stopped(self):
        """Closing a session must give externally managed workers back
        empty, not kill them -- they belong to whoever spawned them."""
        handles = [spawn_local_worker() for _ in range(2)]
        try:
            backend = SocketBackend(
                CONFIG, 2, endpoints=[handle.endpoint for handle in handles]
            )
            backend.apply_shard_batches([_batch(0), _batch(1)])
            backend.close()
            for handle in handles:
                assert handle.alive
                probe = Transport.connect(
                    handle.server.host, handle.server.port, timeout_s=10.0
                )
                try:
                    assert _ok(probe.request("hello"))["shards"] == []
                finally:
                    probe.close()
        finally:
            for handle in handles:
                handle.stop()

    def test_snapshot_cadence_bounds_the_replay_tail(self):
        backend = SocketBackend(CONFIG, 1, snapshot_every_batches=2)
        try:
            for salt in range(5):
                backend.apply_shard_batches([_batch(0, salt=salt)])
            stats = backend.failover_stats()
            assert stats["snapshots_taken"] == 2  # after batches 2 and 4
            assert backend.replay_log.tail_length(0) == 1  # only batch 5 left
            assert stats["failovers"] == 0
        finally:
            backend.close()

    def test_empty_flushes_do_not_grow_the_replay_tail(self):
        backend = SocketBackend(CONFIG, 2, snapshot_every_batches=100)
        try:
            backend.apply_shard_batches([_batch(0)])
            backend.apply_shard_batches(
                [ShardUpdateBatch(shard_id=0, entries=()), _batch(1)]
            )
            assert backend.replay_log.tail_length(0) == 1
            assert backend.replay_log.tail_length(1) == 1
        finally:
            backend.close()

    def test_unreachable_endpoint_fails_fast_at_construction(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises((TransportError, ShardBackendError)):
            SocketBackend(
                CONFIG,
                1,
                endpoints=[f"127.0.0.1:{port}"],
                standby_workers=0,
                connect_timeout_s=1.0,
            )

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            SocketBackend(CONFIG, 1, snapshot_every_batches=0)
        with pytest.raises(ValueError):
            SocketBackend(CONFIG, 1, heartbeat_interval_s=0.0)
        with pytest.raises(ValueError):
            SocketBackend(CONFIG, 1, standby_workers=-1)
