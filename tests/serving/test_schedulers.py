"""Scheduler ordering: FIFO, priority, earliest-deadline-first, stability."""

from __future__ import annotations

import math
import time

import pytest

from repro.octomap import PointCloud
from repro.serving import ScanRequest, make_scheduler
from repro.serving.schedulers import SCHEDULER_POLICIES


def _request(request_id: int, priority: int = 0, deadline_s: float = math.inf) -> ScanRequest:
    return ScanRequest(
        session_id="map",
        cloud=PointCloud([(1.0, 0.0, 0.0)]),
        origin=(0.0, 0.0, 0.0),
        priority=priority,
        deadline_s=deadline_s,
        request_id=request_id,
    )


def _drain(scheduler):
    order = []
    while scheduler:
        order.append(scheduler.pop().request_id)
    return order


def test_registry_and_unknown_policy():
    assert set(SCHEDULER_POLICIES) == {"fifo", "priority", "deadline"}
    with pytest.raises(KeyError, match="unknown scheduler policy"):
        make_scheduler("round-robin")


def test_fifo_preserves_arrival_order():
    scheduler = make_scheduler("fifo")
    for request_id in (3, 1, 4, 1_000, 5):
        scheduler.push(_request(request_id))
    assert _drain(scheduler) == [3, 1, 4, 1_000, 5]


def test_fifo_interleaved_push_pop():
    scheduler = make_scheduler("fifo")
    scheduler.push(_request(0))
    scheduler.push(_request(1))
    assert scheduler.pop().request_id == 0
    scheduler.push(_request(2))
    assert _drain(scheduler) == [1, 2]
    assert len(scheduler) == 0
    with pytest.raises(IndexError):
        scheduler.pop()


def test_priority_serves_highest_first_fifo_among_equals():
    scheduler = make_scheduler("priority")
    scheduler.push(_request(0, priority=1))
    scheduler.push(_request(1, priority=5))
    scheduler.push(_request(2, priority=1))
    scheduler.push(_request(3, priority=5))
    assert _drain(scheduler) == [1, 3, 0, 2]


def test_deadline_serves_earliest_first_fifo_among_equals():
    scheduler = make_scheduler("deadline")
    scheduler.push(_request(0, deadline_s=9.0))
    scheduler.push(_request(1, deadline_s=1.0))
    scheduler.push(_request(2))  # no deadline -> served last
    scheduler.push(_request(3, deadline_s=1.0))
    assert _drain(scheduler) == [1, 3, 0, 2]


def test_uniform_workload_identical_across_policies():
    requests = [_request(request_id) for request_id in range(7)]
    orders = []
    for policy in SCHEDULER_POLICIES:
        scheduler = make_scheduler(policy)
        for request in requests:
            scheduler.push(request)
        orders.append(_drain(scheduler))
    assert orders[0] == orders[1] == orders[2] == list(range(7))


def test_fifo_compaction_keeps_order():
    scheduler = make_scheduler("fifo")
    # Push/pop enough to trigger the lazy compaction path.
    for request_id in range(200):
        scheduler.push(_request(request_id))
    popped = [scheduler.pop().request_id for _ in range(150)]
    assert popped == list(range(150))
    for request_id in range(200, 220):
        scheduler.push(_request(request_id))
    assert _drain(scheduler) == list(range(150, 220))


def test_fifo_len_stays_correct_across_the_compaction_boundary():
    """``len()`` must agree with the logical queue depth on both sides of
    the lazy-compaction trigger (head > 64 and head * 2 >= backing length)."""
    scheduler = make_scheduler("fifo")
    for request_id in range(130):
        scheduler.push(_request(request_id))
    # Pop up to (and across) the compaction trigger -- head > 64 and
    # head * 2 >= backing length, i.e. inside the 65th pop -- checking len
    # at every step.
    for popped in range(1, 66):
        assert scheduler.pop().request_id == popped - 1
        assert len(scheduler) == 130 - popped
    assert scheduler._head == 0, "lazy compaction ran on the 65th pop"
    # Order and length stay correct after the backing list was rewritten.
    assert scheduler.pop().request_id == 65
    assert len(scheduler) == 64
    assert _drain(scheduler) == list(range(66, 130))
    assert len(scheduler) == 0


def test_deadline_mixed_inf_and_finite_keeps_fifo_among_equals():
    """Requests without a deadline (inf) sort after every finite deadline
    but keep arrival order among themselves, exactly like finite ties."""
    scheduler = make_scheduler("deadline")
    scheduler.push(_request(0))  # inf
    scheduler.push(_request(1, deadline_s=5.0))
    scheduler.push(_request(2))  # inf
    scheduler.push(_request(3, deadline_s=5.0))
    scheduler.push(_request(4))  # inf
    scheduler.push(_request(5, deadline_s=1.0))
    assert _drain(scheduler) == [5, 1, 3, 0, 2, 4]


def test_pop_from_empty_raises_for_every_policy():
    for policy in SCHEDULER_POLICIES:
        scheduler = make_scheduler(policy)
        with pytest.raises(IndexError, match="empty"):
            scheduler.pop()
        # Still empty and still usable after the failed pop.
        assert len(scheduler) == 0
        scheduler.push(_request(0))
        assert scheduler.pop().request_id == 0
        with pytest.raises(IndexError, match="empty"):
            scheduler.pop()


# ---------------------------------------------------------------------------
# Missed-deadline accounting (counted by the pipeline at pop time)
# ---------------------------------------------------------------------------
def test_expired_deadlines_are_counted_as_misses_at_flush():
    from repro.serving import MapSession, SessionConfig

    with MapSession(
        "map", SessionConfig(num_shards=1, batch_size=4, scheduler_policy="deadline")
    ) as session:
        now = time.monotonic()
        cloud = PointCloud([(1.0, 0.0, 0.2), (1.0, 0.4, 0.2)])
        # Two requests already past their deadline, one comfortably inside
        # it, one with no deadline at all.
        for deadline in (now - 10.0, now - 0.5, now + 60.0, math.inf):
            session.submit(
                ScanRequest(
                    session_id="map",
                    cloud=cloud,
                    origin=(0.0, 0.0, 0.2),
                    deadline_s=deadline,
                )
            )
        reports = session.flush_all()
        assert sum(report.deadline_misses for report in reports) == 2
        assert session.stats.deadline_misses == 2


def test_deadline_misses_are_zero_for_undeadlined_traffic():
    from repro.serving import MapSession, SessionConfig

    with MapSession("map", SessionConfig(num_shards=1, batch_size=2)) as session:
        cloud = PointCloud([(1.0, 0.0, 0.2)])
        for _ in range(3):
            session.submit(ScanRequest(session_id="map", cloud=cloud, origin=(0.0, 0.0, 0.2)))
        session.flush_all()
        assert session.stats.deadline_misses == 0


def test_deadline_misses_render_in_the_ingest_table():
    from repro.serving import MapSession, SessionConfig
    from repro.serving.stats import ServiceStats

    assert "Deadline misses" in ServiceStats.INGEST_HEADERS
    with MapSession("map", SessionConfig(num_shards=1)) as session:
        session.submit(
            ScanRequest(
                session_id="map",
                cloud=PointCloud([(1.0, 0.0, 0.2)]),
                origin=(0.0, 0.0, 0.2),
                deadline_s=time.monotonic() - 1.0,
            )
        )
        session.flush_all()
        stats = ServiceStats()
        stats.register(session.stats)
        column = ServiceStats.INGEST_HEADERS.index("Deadline misses")
        assert stats.ingest_rows()[0][column] == 1
