"""Sessions and the manager: isolation, routing, stats, lifecycle."""

from __future__ import annotations

import pytest

from repro.serving import MapSession, MapSessionManager, ScanRequest, SessionConfig


def test_sessions_are_isolated(small_scans):
    manager = MapSessionManager(SessionConfig(num_shards=2, batch_size=4))
    manager.ingest(ScanRequest.from_scan_node("left", small_scans[0]))
    # "right" exists but never ingested anything.
    manager.create_session("right")

    assert manager.query("left", 1.2, 0.3, 0.2).status in ("occupied", "free")
    assert manager.query("right", 1.2, 0.3, 0.2).status == "unknown"
    assert manager.service_stats.session("left").voxel_updates > 0
    assert manager.service_stats.session("right").voxel_updates == 0


def test_request_ids_are_globally_unique_and_monotonic(small_scans):
    manager = MapSessionManager(SessionConfig(num_shards=1, batch_size=8))
    receipts = [
        manager.submit(ScanRequest.from_scan_node(session_id, small_scans[0]))
        for session_id in ("a", "b", "a", "c")
    ]
    ids = [receipt.request_id for receipt in receipts]
    assert ids == sorted(ids)
    assert len(set(ids)) == len(ids)
    assert manager.pending_requests() == 4
    manager.flush_all()
    assert manager.pending_requests() == 0


def test_session_lifecycle():
    manager = MapSessionManager()
    session = manager.create_session("tenant")
    assert "tenant" in manager
    assert manager.session_ids() == ("tenant",)
    with pytest.raises(ValueError, match="already exists"):
        manager.create_session("tenant")
    assert manager.get_or_create_session("tenant") is session

    closed = manager.close_session("tenant")
    assert closed is session
    assert "tenant" not in manager
    with pytest.raises(KeyError, match="unknown session"):
        manager.get_session("tenant")
    assert len(manager.service_stats) == 0


def test_get_or_create_rejects_conflicting_config():
    """Regression: a caller-supplied config used to be silently discarded
    when the session already existed, handing back a session with different
    settings than requested."""
    manager = MapSessionManager()
    config = SessionConfig(num_shards=2, batch_size=4)
    session = manager.get_or_create_session("tenant", config)
    # Same config (equal, not identical) and config=None both adopt the
    # existing session.
    assert manager.get_or_create_session("tenant", SessionConfig(num_shards=2, batch_size=4)) is session
    assert manager.get_or_create_session("tenant") is session
    with pytest.raises(ValueError, match="different"):
        manager.get_or_create_session("tenant", SessionConfig(num_shards=4, batch_size=4))
    with pytest.raises(ValueError, match="different"):
        manager.get_or_create_session("tenant", config.with_backend("thread"))


def test_ingest_broken_dispatch_surfaces_as_runtime_error(small_scans, monkeypatch):
    """Regression: the submit-dispatched-nothing postcondition was a bare
    assert, so under ``python -O`` a broken flush fell through to an
    IndexError on the empty report list instead of a diagnosis."""
    manager = MapSessionManager(SessionConfig(num_shards=1, batch_size=2))
    session = manager.get_or_create_session("tenant")
    monkeypatch.setattr(session, "flush_all", lambda: [])
    with pytest.raises(RuntimeError, match="dispatched nothing"):
        manager.ingest(ScanRequest.from_scan_node("tenant", small_scans[0]))


def test_submit_auto_create_toggle(small_scans):
    manager = MapSessionManager()
    with pytest.raises(KeyError):
        manager.submit(ScanRequest.from_scan_node("ghost", small_scans[0]), auto_create=False)
    receipt = manager.submit(ScanRequest.from_scan_node("ghost", small_scans[0]))
    assert receipt.session_id == "ghost"
    assert "ghost" in manager


def test_session_rejects_foreign_requests(small_scans):
    session = MapSession("mine")
    with pytest.raises(ValueError, match="submitted to"):
        session.submit(ScanRequest.from_scan_node("theirs", small_scans[0]))


def test_default_max_range_applied(small_scans):
    config = SessionConfig(num_shards=1, default_max_range=5.0)
    session = MapSession("map", config)
    session.submit(ScanRequest.from_scan_node("map", small_scans[0]))
    # Pop back off the scheduler to observe the effective request.
    request = session.pipeline.scheduler.pop()
    assert request.max_range == 5.0


def test_stats_render_mentions_every_session(small_scans):
    manager = MapSessionManager(SessionConfig(num_shards=2, batch_size=2))
    for session_id in ("alpha", "beta"):
        manager.ingest(ScanRequest.from_scan_node(session_id, small_scans[0]))
        manager.query(session_id, 0.5, 0.5, 0.2)
        manager.query(session_id, 0.5, 0.5, 0.2)
    rendered = manager.render_stats()
    assert "alpha" in rendered and "beta" in rendered
    assert "Serving: ingestion per session" in rendered
    assert "Serving: queries per session" in rendered
    assert manager.service_stats.overall_hit_rate() > 0.0


def test_shard_load_and_batch_reports(small_requests):
    session = MapSession("map", SessionConfig(num_shards=4, batch_size=2))
    for request in small_requests:
        session.submit(request)
    reports = session.flush_all()
    assert len(reports) == 2  # 3 requests, batch size 2 -> 2 batches
    assert sum(report.scans for report in reports) == len(small_requests)
    assert sum(session.shard_load()) == sum(report.voxel_updates for report in reports)
    for report in reports:
        assert report.duplicates_removed >= 0
        assert report.modelled_cycles > 0
        assert len(report.shard_updates) == 4


def test_flush_all_round_robin_drains_every_session(small_scans):
    manager = MapSessionManager(SessionConfig(num_shards=1, batch_size=1))
    for session_id in ("a", "b"):
        for scan in small_scans:
            manager.submit(ScanRequest.from_scan_node(session_id, scan))
    reports = manager.flush_all()
    assert manager.pending_requests() == 0
    sessions_seen = {report.session_id for report in reports}
    assert sessions_seen == {"a", "b"}


def test_stats_render_folds_beyond_top_k(small_scans):
    """Many sessions render as the busiest K plus one aggregate row; the
    dict export always stays complete."""
    manager = MapSessionManager(SessionConfig(num_shards=1, batch_size=2))
    # "hot" ingests twice, everyone else once: traffic ranking is stable.
    manager.ingest(ScanRequest.from_scan_node("hot", small_scans[0]))
    manager.ingest(ScanRequest.from_scan_node("hot", small_scans[1]))
    for index in range(6):
        manager.ingest(ScanRequest.from_scan_node(f"cold-{index}", small_scans[0]))

    rendered = manager.service_stats.render(top_sessions=3)
    assert "hot" in rendered
    assert "(+4 more)" in rendered
    assert "top 3 of 7 by traffic" in rendered

    full = manager.service_stats.render(top_sessions=0)
    assert "(+4 more)" not in full
    for index in range(6):
        assert f"cold-{index}" in full

    exported = manager.service_stats.to_dict()
    assert len(exported["sessions"]) == 7
