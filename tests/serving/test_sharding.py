"""Shard routing: total, deterministic, spatially coherent partitions."""

from __future__ import annotations

import pytest

from repro.core.config import OMUConfig
from repro.core.scheduler import VoxelUpdateRequest
from repro.octomap.keys import OcTreeKey
from repro.serving import ShardRouter


@pytest.fixture
def config() -> OMUConfig:
    return OMUConfig(resolution_m=0.2)


def test_router_is_total_and_deterministic(config):
    router = ShardRouter(config, num_shards=3, prefix_levels=12)
    keys = [OcTreeKey(32768 + dx, 32768 + dy, 32760) for dx in range(-8, 8) for dy in range(-8, 8)]
    first = [router.shard_for_key(key) for key in keys]
    second = [router.shard_for_key(key) for key in keys]
    assert first == second
    assert all(0 <= shard < 3 for shard in first)
    assert set(first) == {0, 1, 2}  # a spread of keys reaches every shard


def test_single_shard_owns_everything(config):
    router = ShardRouter(config, num_shards=1)
    assert router.shard_for_point(3.0, -2.0, 0.4) == 0
    assert router.shard_for_key(OcTreeKey(0, 0, 0)) == 0


def test_point_and_key_routing_agree(config):
    router = ShardRouter(config, num_shards=4, prefix_levels=12)
    for point in ((1.0, 2.0, 0.2), (-3.4, 0.8, -1.0), (0.05, -0.05, 0.0)):
        key = router.converter.coord_to_key(*point)
        assert router.shard_for_point(*point) == router.shard_for_key(key)


def test_partition_preserves_order_and_ownership(config):
    router = ShardRouter(config, num_shards=3, prefix_levels=12)
    keys = [OcTreeKey(32768 + index, 32768 - index, 32768 + 2 * index) for index in range(50)]
    stream = [VoxelUpdateRequest(key, occupied=bool(index % 2)) for index, key in enumerate(keys)]
    per_shard = router.partition(stream)
    assert sum(len(shard_stream) for shard_stream in per_shard) == len(stream)
    for shard_id, shard_stream in enumerate(per_shard):
        assert all(router.shard_for_key(request.key) == shard_id for request in shard_stream)
        # Relative order within the shard matches the global stream order.
        positions = [stream.index(request) for request in shard_stream]
        assert positions == sorted(positions)


def test_too_many_shards_for_prefix_rejected(config):
    with pytest.raises(ValueError, match="key-prefix subtrees"):
        ShardRouter(config, num_shards=9, prefix_levels=1)
    ShardRouter(config, num_shards=9, prefix_levels=2)  # 64 subtrees: fine


def test_invalid_parameters_rejected(config):
    with pytest.raises(ValueError):
        ShardRouter(config, num_shards=0)
    with pytest.raises(ValueError):
        ShardRouter(config, num_shards=1, prefix_levels=0)
    # Deeper than the tree must fail at construction, not at first routed key.
    with pytest.raises(ValueError, match="prefix_levels"):
        ShardRouter(config, num_shards=1, prefix_levels=config.tree_depth + 1)


def test_shard_index_matches_address_generator(config):
    from repro.core.address_gen import AddressGenerator

    router = ShardRouter(config, num_shards=5, prefix_levels=3)
    generator = AddressGenerator(config.resolution_m, config.tree_depth, config.num_pes)
    for point in ((0.4, 0.4, 0.4), (-5.0, 3.0, 1.0), (7.7, -7.7, 0.1)):
        key = router.converter.coord_to_key(*point)
        assert router.shard_for_key(key) == generator.shard_index(key, 5, 3)
