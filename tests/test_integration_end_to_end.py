"""End-to-end integration tests across all subsystems.

These tests run the full pipeline -- synthetic dataset generation, the OMU
accelerator model, the software baseline, the performance / energy models and
the experiment drivers -- on a small workload, and assert the paper's
headline claims hold qualitatively.
"""

import pytest

from repro.analysis.experiments import evaluate_dataset
from repro.baselines.cpu_model import A57_COST_MODEL, I9_COST_MODEL
from repro.core import OMUAccelerator, OMUConfig
from repro.core.verification import verify_against_software
from repro.datasets.catalog import dataset_by_name
from repro.datasets.generator import GenerationSpec, generate_scan_graph
from repro.datasets.scan_graph_io import read_scan_graph, write_scan_graph
from repro.energy.power_model import PowerModel
from repro.octomap.serialization import read_tree, write_tree


@pytest.fixture(scope="module")
def corridor_graph():
    descriptor = dataset_by_name("corridor")
    spec = GenerationSpec(num_scans=2, beams_azimuth=72, beams_elevation=3, max_range_m=12.0)
    return descriptor, spec, generate_scan_graph(descriptor, spec)


class TestFullPipeline:
    def test_synthetic_dataset_to_accelerator_to_verified_map(self, corridor_graph):
        descriptor, spec, graph = corridor_graph
        accelerator = OMUAccelerator(OMUConfig(resolution_m=descriptor.resolution_m))
        timing = accelerator.process_scan_graph(graph, max_range=spec.max_range_m)
        assert timing.voxel_updates > 1000

        report = verify_against_software(accelerator, graph, max_range=spec.max_range_m)
        assert report.equivalent, report.summary()

    def test_accelerator_map_round_trips_through_serialization(self, corridor_graph, tmp_path):
        descriptor, spec, graph = corridor_graph
        accelerator = OMUAccelerator(OMUConfig(resolution_m=descriptor.resolution_m))
        accelerator.process_scan_graph(graph, max_range=spec.max_range_m)
        tree = accelerator.export_octree()
        path = tmp_path / "map.bt"
        write_tree(tree, path)
        restored = read_tree(path)
        assert restored.size() == tree.size()

    def test_scan_graph_round_trips_through_the_text_format(self, corridor_graph, tmp_path):
        _, _, graph = corridor_graph
        path = tmp_path / "corridor.graph"
        write_scan_graph(graph, path)
        restored = read_scan_graph(path)
        assert restored.total_points() == graph.total_points()
        assert len(restored) == len(graph)

    def test_accelerator_energy_is_far_below_the_a57(self, corridor_graph):
        descriptor, spec, graph = corridor_graph
        config = OMUConfig(resolution_m=descriptor.resolution_m)
        accelerator = OMUAccelerator(config)
        accelerator.process_scan_graph(graph, max_range=spec.max_range_m)

        power = PowerModel(config).power_from_statistics(accelerator.statistics())
        omu_latency = descriptor.voxel_updates_total * accelerator.map_cycles_per_update() / config.clock_hz
        omu_energy = power.total_w * omu_latency
        a57_energy = A57_COST_MODEL.energy_joules(descriptor)
        assert a57_energy / omu_energy > 100.0

    def test_headline_claims_hold_on_every_dataset(self):
        """OMU beats both CPUs and clears 30 FPS on all three maps (smoke scale)."""
        for name in ("FR-079 corridor", "Freiburg campus", "New College"):
            evaluation = evaluate_dataset(name, scale="smoke")
            assert evaluation.omu_latency_s < evaluation.i9_latency_s < evaluation.a57_latency_s
            assert evaluation.omu_fps > evaluation.i9_fps > evaluation.a57_fps
            assert evaluation.i9_fps == pytest.approx(5.0, abs=1.0)
            assert evaluation.a57_fps == pytest.approx(1.0, abs=0.3)

    def test_cost_models_reproduce_table_iii_cpu_columns(self):
        for name in ("FR-079 corridor", "Freiburg campus", "New College"):
            descriptor = dataset_by_name(name)
            assert I9_COST_MODEL.latency_seconds(descriptor) == pytest.approx(
                descriptor.paper.i9_latency_s, rel=0.05
            )
            assert A57_COST_MODEL.latency_seconds(descriptor) == pytest.approx(
                descriptor.paper.a57_latency_s, rel=0.10
            )

    def test_pruning_keeps_accelerator_memory_bounded(self, corridor_graph):
        """Revisiting the same scene twice must not double the stored nodes."""
        descriptor, spec, graph = corridor_graph
        accelerator = OMUAccelerator(OMUConfig(resolution_m=descriptor.resolution_m))
        accelerator.process_scan_graph(graph, max_range=spec.max_range_m)
        nodes_after_first_pass = accelerator.statistics().nodes_stored
        accelerator.process_scan_graph(graph, max_range=spec.max_range_m)
        nodes_after_second_pass = accelerator.statistics().nodes_stored
        assert nodes_after_second_pass < 1.5 * nodes_after_first_pass
