"""Property-based tests (hypothesis) on the core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DEFAULT_CONFIG
from repro.core.fixedpoint import DEFAULT_FORMAT, QuantizedOccupancyParams
from repro.core.pe import ProcessingElement
from repro.core.prune_manager import PruneAddressManager
from repro.core.treemem import ChildStatus, TreeMemEntry
from repro.octomap.keys import KeyConverter, OcTreeKey
from repro.octomap.logodds import DEFAULT_PARAMS, log_odds, probability
from repro.octomap.octree import OccupancyOcTree
from repro.octomap.raycast import compute_ray_keys

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
coordinates = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)
key_components = st.integers(min_value=0, max_value=0xFFFF)
probabilities = st.floats(min_value=1e-6, max_value=1.0 - 1e-6)
raw_values = st.integers(min_value=DEFAULT_FORMAT.min_raw, max_value=DEFAULT_FORMAT.max_raw)


# ---------------------------------------------------------------------------
# Log-odds
# ---------------------------------------------------------------------------
@given(probabilities)
def test_log_odds_probability_roundtrip(p):
    assert probability(log_odds(p)) == pytest_approx(p)


def pytest_approx(value, rel=1e-9, abs_tol=1e-9):
    class _Approx:
        def __eq__(self, other):
            return math.isclose(other, value, rel_tol=rel, abs_tol=abs_tol)

    return _Approx()


@given(st.floats(min_value=-10.0, max_value=10.0, allow_nan=False), st.booleans())
def test_clamped_update_always_stays_in_bounds(value, hit):
    updated = DEFAULT_PARAMS.update(value, hit)
    assert DEFAULT_PARAMS.clamp_min <= updated <= DEFAULT_PARAMS.clamp_max


@given(st.lists(st.booleans(), min_size=1, max_size=64))
def test_update_sequences_stay_clamped(sequence):
    value = 0.0
    for hit in sequence:
        value = DEFAULT_PARAMS.update(value, hit)
        assert DEFAULT_PARAMS.clamp_min <= value <= DEFAULT_PARAMS.clamp_max


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------
@given(coordinates, coordinates, coordinates)
def test_coord_key_roundtrip_error_is_below_half_resolution(x, y, z):
    converter = KeyConverter(0.1)
    key = converter.coord_to_key(x, y, z)
    centre = converter.key_to_coord(key)
    for original, restored in zip((x, y, z), centre):
        assert abs(original - restored) <= converter.resolution / 2.0 + 1e-9


@given(key_components, key_components, key_components)
def test_key_path_reconstructs_the_key(kx, ky, kz):
    key = OcTreeKey(kx, ky, kz)
    rx = ry = rz = 0
    for level, index in enumerate(key.path(16)):
        bit = 15 - level
        rx |= ((index >> 0) & 1) << bit
        ry |= ((index >> 1) & 1) << bit
        rz |= ((index >> 2) & 1) << bit
    assert (rx, ry, rz) == key.as_tuple()


@given(key_components, key_components, key_components, st.integers(min_value=0, max_value=16))
def test_at_depth_is_idempotent(kx, ky, kz, depth):
    key = OcTreeKey(kx, ky, kz)
    coarse = key.at_depth(depth, 16)
    assert coarse.at_depth(depth, 16) == coarse


# ---------------------------------------------------------------------------
# Ray casting
# ---------------------------------------------------------------------------
@given(coordinates, coordinates, coordinates, coordinates, coordinates, coordinates)
@settings(max_examples=50)
def test_ray_traversal_is_six_connected(ox, oy, oz, ex, ey, ez):
    converter = KeyConverter(0.2)
    keys = compute_ray_keys(converter, (ox, oy, oz), (ex, ey, ez))
    path = [converter.coord_to_key(ox, oy, oz)] + keys
    for previous, current in zip(path, path[1:]):
        distance = sum(abs(a - b) for a, b in zip(previous.as_tuple(), current.as_tuple()))
        assert distance == 1
    assert len(set(keys)) == len(keys)


# ---------------------------------------------------------------------------
# Fixed point
# ---------------------------------------------------------------------------
@given(st.floats(min_value=-30.0, max_value=30.0, allow_nan=False))
def test_fixed_point_quantisation_error_is_half_lsb(value):
    fmt = DEFAULT_FORMAT
    assert abs(fmt.quantize(value) - value) <= fmt.scale / 2.0 + 1e-12


@given(raw_values)
def test_fixed_point_word_roundtrip(raw):
    fmt = DEFAULT_FORMAT
    assert fmt.from_unsigned_word(fmt.to_unsigned_word(raw)) == raw


@given(raw_values, raw_values)
def test_saturating_add_never_overflows(a, b):
    fmt = DEFAULT_FORMAT
    result = fmt.saturating_add(a, b)
    assert fmt.min_raw <= result <= fmt.max_raw


@given(raw_values, st.lists(st.booleans(), min_size=1, max_size=32))
def test_quantised_updates_stay_within_clamps_or_initial_range(start, hits):
    params = QuantizedOccupancyParams(DEFAULT_PARAMS, DEFAULT_FORMAT)
    value = params.clamp_raw(start)
    for hit in hits:
        value = params.update_raw(value, hit)
        assert params.raw_clamp_min <= value <= params.raw_clamp_max


# ---------------------------------------------------------------------------
# TreeMem entry packing
# ---------------------------------------------------------------------------
tags_strategy = st.lists(st.sampled_from(list(ChildStatus)), min_size=8, max_size=8)


@given(
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    tags_strategy,
    st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1),
)
def test_treemem_entry_pack_unpack_roundtrip(pointer, tags, raw):
    entry = TreeMemEntry(pointer=pointer, child_tags=list(tags), probability_raw=raw)
    word = entry.pack()
    assert 0 <= word < (1 << 64)
    restored = TreeMemEntry.unpack(word)
    assert restored.pointer == pointer
    assert restored.child_tags == list(tags)
    assert restored.probability_raw == raw


# ---------------------------------------------------------------------------
# Prune address manager
# ---------------------------------------------------------------------------
@given(st.lists(st.booleans(), min_size=1, max_size=200))
@settings(max_examples=50)
def test_prune_manager_never_hands_out_a_live_row(operations):
    """Allocate (True) / free-the-oldest (False): live rows stay unique."""
    manager = PruneAddressManager(num_rows=64)
    live = []
    for allocate in operations:
        if allocate:
            if manager.free_rows == 0:
                continue
            row = manager.allocate_row()
            assert row not in live
            live.append(row)
        elif live:
            manager.free_row(live.pop(0))
    assert manager.rows_in_use == len(live)


# ---------------------------------------------------------------------------
# Octree / accelerator functional invariants
# ---------------------------------------------------------------------------
voxel_updates = st.lists(
    st.tuples(
        st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
        st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
        st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
        st.booleans(),
    ),
    min_size=1,
    max_size=40,
)


@given(voxel_updates)
@settings(max_examples=30, deadline=None)
def test_octree_values_always_clamped_and_queries_consistent(updates):
    tree = OccupancyOcTree(0.25)
    for x, y, z, occupied in updates:
        tree.update_node(x, y, z, occupied=occupied)
    for leaf in tree.iter_leafs():
        assert DEFAULT_PARAMS.clamp_min <= leaf.log_odds <= DEFAULT_PARAMS.clamp_max
    # Node count bookkeeping must match an actual traversal.
    assert tree.size() == _count_nodes(tree.root)


def _count_nodes(node):
    if node is None:
        return 0
    return 1 + sum(_count_nodes(child) for _, child in node.children())


@given(voxel_updates)
@settings(max_examples=20, deadline=None)
def test_pe_and_software_tree_agree_on_random_update_sequences(updates):
    """The PE datapath matches the quantised software tree for any sequence."""
    config = DEFAULT_CONFIG.with_resolution(0.25)
    quantized = config.quantized_params()
    software = OccupancyOcTree(0.25, params=quantized.as_float_params())
    pes = {pe_id: ProcessingElement(pe_id, config) for pe_id in range(8)}
    converter = KeyConverter(0.25, config.tree_depth)

    for x, y, z, occupied in updates:
        key = converter.coord_to_key(x, y, z)
        software.update_node(key, occupied=occupied)
        pes[key.child_index(0, config.tree_depth)].update_voxel(key, occupied)

    fmt = config.fixed_point
    for x, y, z, _ in updates:
        key = converter.coord_to_key(x, y, z)
        node = software.search(key)
        status, raw = pes[key.child_index(0, config.tree_depth)].query_voxel(key)
        assert node is not None
        assert fmt.to_raw(node.log_odds) == raw
        expected = "occupied" if software.is_node_occupied(node) else "free"
        assert status == expected
